//! Canonical serialization and content hashing of [`RunSpec`]s.
//!
//! A [`RunSpec`] is a complete, deterministic run description: two specs
//! that encode to the same bytes produce byte-identical reduced results
//! (the determinism walls pin this). This module gives that fact teeth as
//! a *wire contract*: a versioned, byte-stable text encoding
//! ([`encode_spec`]) with a strict decoder ([`decode_spec`]) and an
//! FNV-1a content hash ([`spec_hash`]) — the cache key and request-dedup
//! identity of the `hexd` sweep service, and the serialization layer any
//! future remote-worker sharding reuses.
//!
//! ## What is (and is not) encoded
//!
//! Everything that determines the *result*: grid shape, run count, base
//! seed (the seed policy — run `r` simulates with `seed + r`), layer-0
//! scenario, fault regime (including explicit [`FaultPlan`]s, link
//! overrides and all), initial states, pulse count, timing policy, the
//! delay model, the queue policy, and any explicit schedule override.
//!
//! `threads` is deliberately **excluded**: batch reductions are pinned
//! independent of the worker-thread count, so it is an execution knob of
//! the machine, not part of the experiment description. Decoding yields
//! `threads = 0` (available parallelism).
//!
//! The queue policy *is* encoded even though all policies are pinned
//! byte-identical: it is part of the run description the caller wrote
//! down, and keeping it visible in the canonical form means a cache
//! entry records exactly what was asked for. (It also keeps the
//! `HEX_QUEUE` CI legs honest: they exercise a distinct cache key rather
//! than silently sharing entries with the default policy.)
//!
//! ## Stability
//!
//! The format is versioned by the `hexcanon/2` header line and
//! [`CANON_VERSION`]; [`engine_version`] combines it with the crate
//! version into the tag the result cache stores next to every entry.
//! Hashes are stable across processes and machines — pinned by a golden
//! value in the workspace serve tests. Any change to the encoding MUST
//! bump [`CANON_VERSION`], which retires every existing cache entry.
//!
//! ```
//! use hex_sim::canon::{decode_spec, spec_hash};
//! use hex_sim::RunSpec;
//!
//! let spec = RunSpec::grid(8, 6).runs(4).seed(7);
//! let bytes = spec.canonical_bytes();
//! let back = decode_spec(&bytes).unwrap();
//! assert_eq!(back.canonical_bytes(), bytes);
//! assert_eq!(spec_hash(&back), spec_hash(&spec));
//! ```

use std::fmt::Write as _;

use hex_clock::Scenario;
use hex_core::{
    DelayModel, DelayRange, FaultEvent, FaultPlan, FaultScript, LinkBehavior, NodeFault,
    RejoinState, SpatialVariation,
};
use hex_des::{Duration, Schedule, Time};

use crate::engine::{InitState, QueuePolicy};
use crate::spec::{FaultRegime, RunSpec, TimingPolicy};

/// Canonical-format epoch. Bump on ANY change to the byte encoding; the
/// bump flows into [`engine_version`] and retires every cache entry.
/// Epoch 2 added the `faults script` regime (dynamic fault campaigns).
pub const CANON_VERSION: u32 = 2;

/// The header line every canonical spec starts with.
pub const HEADER: &str = "hexcanon/2";

/// The engine-version tag stored next to every cached result: the
/// `hex-sim` crate version plus the canonical-format epoch. Results are
/// only replayed from cache when this tag matches exactly.
pub fn engine_version() -> String {
    format!(
        "hex-sim-{}+canon{}",
        env!("CARGO_PKG_VERSION"),
        CANON_VERSION
    )
}

/// 64-bit FNV-1a over a byte string — the workspace's content hash
/// (dependency-free, byte-order independent, stable across platforms).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The content hash of a spec: FNV-1a over its canonical bytes.
pub fn spec_hash(spec: &RunSpec) -> u64 {
    fnv1a_64(&encode_spec(spec))
}

impl RunSpec {
    /// The canonical byte encoding of this spec ([`encode_spec`]).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        encode_spec(self)
    }

    /// The content hash of this spec ([`spec_hash`]).
    pub fn canonical_hash(&self) -> u64 {
        spec_hash(self)
    }
}

/// Encode a spec into its canonical bytes: a fixed sequence of
/// `field value…` text lines under a versioned header. The encoding is a
/// pure function of the spec's result-determining fields — see the
/// module docs for what is excluded and why.
pub fn encode_spec(spec: &RunSpec) -> Vec<u8> {
    let mut s = String::with_capacity(256);
    s.push_str(HEADER);
    s.push('\n');
    let _ = writeln!(s, "grid {} {}", spec.length, spec.width);
    let _ = writeln!(s, "runs {}", spec.runs);
    let _ = writeln!(s, "seed {}", spec.seed);
    let _ = writeln!(s, "scenario {}", spec.scenario.slug());
    encode_faults(&mut s, &spec.faults);
    let _ = writeln!(s, "init {}", init_label(spec.init));
    let _ = writeln!(s, "pulses {}", spec.pulses);
    encode_timing(&mut s, &spec.timing);
    encode_delays(&mut s, &spec.delays);
    let _ = writeln!(s, "queue {}", spec.queue.label());
    encode_schedule(&mut s, spec.schedule.as_ref());
    s.into_bytes()
}

/// Decode canonical bytes back into a [`RunSpec`]. Strict: the header
/// must match, every field must appear exactly once in canonical order,
/// and no trailing bytes are tolerated — a decoded spec re-encodes to
/// the identical byte string (pinned by the workspace serve tests).
/// `threads` is set to 0 (available parallelism); it is not part of the
/// canonical description.
pub fn decode_spec(bytes: &[u8]) -> Result<RunSpec, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("not UTF-8: {e}"))?;
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty input")?;
    if header != HEADER {
        return Err(format!("bad header {header:?} (expected {HEADER:?})"));
    }

    let (l, w) = {
        let f = fields(&mut lines, "grid")?;
        (parse(&f, 0, "grid length")?, parse(&f, 1, "grid width")?)
    };
    let mut spec = RunSpec::grid(l, w).threads(0);
    spec.runs = parse(&fields(&mut lines, "runs")?, 0, "runs")?;
    spec.seed = parse(&fields(&mut lines, "seed")?, 0, "seed")?;
    spec.scenario = {
        let f = fields(&mut lines, "scenario")?;
        scenario_from_slug(f.first().copied().unwrap_or(""))?
    };
    spec.faults = decode_faults(&mut lines)?;
    spec.init = init_from_label(fields(&mut lines, "init")?.first().copied().unwrap_or(""))?;
    spec.pulses = parse(&fields(&mut lines, "pulses")?, 0, "pulses")?;
    spec.timing = decode_timing(&mut lines)?;
    spec.delays = decode_delays(&mut lines)?;
    spec.queue = {
        let f = fields(&mut lines, "queue")?;
        queue_from_label(f.first().copied().unwrap_or(""))?
    };
    spec.schedule = decode_schedule(&mut lines)?;
    if let Some(extra) = lines.next() {
        return Err(format!("trailing line {extra:?} after schedule"));
    }
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Per-field encoders.

fn encode_faults(s: &mut String, faults: &FaultRegime) {
    match faults {
        FaultRegime::None => s.push_str("faults none\n"),
        FaultRegime::Byzantine(f) => {
            let _ = writeln!(s, "faults byzantine {f}");
        }
        FaultRegime::FailSilent(f) => {
            let _ = writeln!(s, "faults fail_silent {f}");
        }
        FaultRegime::FixedByzantine(layer, col) => {
            let _ = writeln!(s, "faults fixed_byzantine {layer} {col}");
        }
        FaultRegime::Mixed {
            byzantine,
            fail_silent,
        } => {
            let _ = writeln!(s, "faults mixed {byzantine} {fail_silent}");
        }
        FaultRegime::Plan(plan) => {
            let nodes: Vec<_> = plan.node_fault_entries().collect();
            let links: Vec<_> = plan.link_override_entries().collect();
            let _ = writeln!(s, "faults plan {} {}", nodes.len(), links.len());
            for (n, f) in nodes {
                let _ = writeln!(s, "fnode {n} {}", node_fault_label(f));
            }
            for (l, b) in links {
                let _ = writeln!(s, "flink {l} {}", link_behavior_label(b));
            }
        }
        FaultRegime::Script(script) => {
            let _ = writeln!(s, "faults script {}", script.len());
            for tr in script.transitions() {
                let at = tr.at.ps();
                match tr.event {
                    FaultEvent::Fail(node, fault) => {
                        let _ = writeln!(s, "ft {at} fail {node} {}", node_fault_label(fault));
                    }
                    FaultEvent::Heal(node, rejoin) => {
                        let _ = writeln!(s, "ft {at} heal {node} {}", rejoin_label(rejoin));
                    }
                    FaultEvent::LinkDown(link, behavior) => {
                        let _ = writeln!(
                            s,
                            "ft {at} link_down {link} {}",
                            link_behavior_label(behavior)
                        );
                    }
                    FaultEvent::LinkUp(link) => {
                        let _ = writeln!(s, "ft {at} link_up {link}");
                    }
                }
            }
        }
    }
}

fn encode_timing(s: &mut String, timing: &TimingPolicy) {
    match timing {
        TimingPolicy::Table3 => s.push_str("timing table3\n"),
        TimingPolicy::Generous => s.push_str("timing generous\n"),
        TimingPolicy::Fixed(t) => {
            let _ = writeln!(
                s,
                "timing fixed {} {} {} {}",
                t.link.lo.ps(),
                t.link.hi.ps(),
                t.sleep.lo.ps(),
                t.sleep.hi.ps()
            );
        }
    }
}

fn encode_delays(s: &mut String, delays: &DelayModel) {
    match delays {
        DelayModel::UniformPerMessage(r) => {
            let _ = writeln!(s, "delays per_message {} {}", r.lo.ps(), r.hi.ps());
        }
        DelayModel::UniformPerLink(r) => {
            let _ = writeln!(s, "delays per_link {} {}", r.lo.ps(), r.hi.ps());
        }
        DelayModel::Fixed(d) => {
            let _ = writeln!(s, "delays fixed {}", d.ps());
        }
        DelayModel::PerLinkFixed(ds) => {
            let _ = writeln!(s, "delays table {}", ds.len());
            let mut line = String::from("dl");
            for d in ds {
                let _ = write!(line, " {}", d.ps());
            }
            s.push_str(&line);
            s.push('\n');
        }
        // Exact f64 fields travel as to_bits hex: parsing them back is
        // bit-lossless, unlike any decimal rendering.
        DelayModel::Spatial(v) => {
            let _ = writeln!(
                s,
                "delays spatial {} {} {:016x} {:016x} {:016x}",
                v.range.lo.ps(),
                v.range.hi.ps(),
                v.layer_gradient.to_bits(),
                v.column_wave.to_bits(),
                v.jitter.to_bits()
            );
        }
    }
}

fn encode_schedule(s: &mut String, schedule: Option<&Schedule>) {
    match schedule {
        None => s.push_str("schedule none\n"),
        Some(sched) => {
            let _ = writeln!(s, "schedule {}", sched.sources());
            for i in 0..sched.sources() {
                let mut line = format!("s {i}");
                for t in sched.source(i) {
                    let _ = write!(line, " {}", t.ps());
                }
                s.push_str(&line);
                s.push('\n');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-field decoders.

/// Read the next line, check it starts with `key`, and return the
/// whitespace-separated value fields after it.
fn fields<'a>(lines: &mut std::str::Lines<'a>, key: &str) -> Result<Vec<&'a str>, String> {
    let line = lines
        .next()
        .ok_or_else(|| format!("missing `{key}` line"))?;
    let mut parts = line.split_ascii_whitespace();
    match parts.next() {
        Some(k) if k == key => Ok(parts.collect()),
        Some(other) => Err(format!("expected `{key}` line, found `{other}`")),
        None => Err(format!("expected `{key}` line, found a blank line")),
    }
}

fn parse<T: std::str::FromStr>(fields: &[&str], ix: usize, what: &str) -> Result<T, String> {
    let raw = fields
        .get(ix)
        .ok_or_else(|| format!("missing {what} value"))?;
    raw.parse()
        .map_err(|_| format!("malformed {what} value {raw:?}"))
}

fn decode_faults(lines: &mut std::str::Lines<'_>) -> Result<FaultRegime, String> {
    let f = fields(lines, "faults")?;
    match f.first().copied().unwrap_or("") {
        "none" => Ok(FaultRegime::None),
        "byzantine" => Ok(FaultRegime::Byzantine(parse(&f, 1, "byzantine count")?)),
        "fail_silent" => Ok(FaultRegime::FailSilent(parse(&f, 1, "fail-silent count")?)),
        "fixed_byzantine" => Ok(FaultRegime::FixedByzantine(
            parse(&f, 1, "fixed layer")?,
            parse(&f, 2, "fixed column")?,
        )),
        "mixed" => Ok(FaultRegime::Mixed {
            byzantine: parse(&f, 1, "mixed byzantine count")?,
            fail_silent: parse(&f, 2, "mixed fail-silent count")?,
        }),
        "plan" => {
            let nodes: usize = parse(&f, 1, "plan node count")?;
            let links: usize = parse(&f, 2, "plan link count")?;
            let mut plan = FaultPlan::none();
            for _ in 0..nodes {
                let f = fields(lines, "fnode")?;
                let id = parse(&f, 0, "plan node id")?;
                let kind = node_fault_from_label(f.get(1).copied().unwrap_or(""))?;
                plan = plan.with_node(id, kind);
            }
            for _ in 0..links {
                let f = fields(lines, "flink")?;
                let id = parse(&f, 0, "plan link id")?;
                let b = link_behavior_from_label(f.get(1).copied().unwrap_or(""))?;
                plan = plan.with_link(id, b);
            }
            Ok(FaultRegime::Plan(plan))
        }
        "script" => {
            let count: usize = parse(&f, 1, "script transition count")?;
            let mut script = FaultScript::none();
            let mut last = i64::MIN;
            for _ in 0..count {
                let f = fields(lines, "ft")?;
                let at: i64 = parse(&f, 0, "transition time")?;
                // The canonical form is time-sorted; accepting unsorted
                // input would re-encode differently and break the
                // decode∘encode = id contract.
                if at < last {
                    return Err(format!("script transition at {at} ps out of order"));
                }
                last = at;
                let event = match f.get(1).copied().unwrap_or("") {
                    "fail" => FaultEvent::Fail(
                        parse(&f, 2, "fail node id")?,
                        node_fault_from_label(f.get(3).copied().unwrap_or(""))?,
                    ),
                    "heal" => FaultEvent::Heal(
                        parse(&f, 2, "heal node id")?,
                        rejoin_from_label(f.get(3).copied().unwrap_or(""))?,
                    ),
                    "link_down" => FaultEvent::LinkDown(
                        parse(&f, 2, "flapped link id")?,
                        link_behavior_from_label(f.get(3).copied().unwrap_or(""))?,
                    ),
                    "link_up" => FaultEvent::LinkUp(parse(&f, 2, "restored link id")?),
                    other => return Err(format!("unknown fault transition `{other}`")),
                };
                script = script.with(Time::from_ps(at), event);
            }
            Ok(FaultRegime::Script(script))
        }
        other => Err(format!("unknown fault regime `{other}`")),
    }
}

fn decode_timing(lines: &mut std::str::Lines<'_>) -> Result<TimingPolicy, String> {
    let f = fields(lines, "timing")?;
    match f.first().copied().unwrap_or("") {
        "table3" => Ok(TimingPolicy::Table3),
        "generous" => Ok(TimingPolicy::Generous),
        "fixed" => {
            let link = range(
                parse(&f, 1, "link timeout lo")?,
                parse(&f, 2, "link timeout hi")?,
            )?;
            let sleep = range(
                parse(&f, 3, "sleep timeout lo")?,
                parse(&f, 4, "sleep timeout hi")?,
            )?;
            Ok(TimingPolicy::Fixed(hex_core::Timing { link, sleep }))
        }
        other => Err(format!("unknown timing policy `{other}`")),
    }
}

fn decode_delays(lines: &mut std::str::Lines<'_>) -> Result<DelayModel, String> {
    let f = fields(lines, "delays")?;
    match f.first().copied().unwrap_or("") {
        "per_message" => Ok(DelayModel::UniformPerMessage(range(
            parse(&f, 1, "delay lo")?,
            parse(&f, 2, "delay hi")?,
        )?)),
        "per_link" => Ok(DelayModel::UniformPerLink(range(
            parse(&f, 1, "delay lo")?,
            parse(&f, 2, "delay hi")?,
        )?)),
        "fixed" => Ok(DelayModel::Fixed(Duration::from_ps(parse(
            &f,
            1,
            "fixed delay",
        )?))),
        "table" => {
            let n: usize = parse(&f, 1, "delay table length")?;
            let row = fields(lines, "dl")?;
            if row.len() != n {
                return Err(format!(
                    "delay table declares {n} entries, row has {}",
                    row.len()
                ));
            }
            let mut ds = Vec::with_capacity(n);
            for (ix, _) in row.iter().enumerate() {
                ds.push(Duration::from_ps(parse(&row, ix, "delay table entry")?));
            }
            if ds.is_empty() {
                return Err("empty per-link delay table".to_string());
            }
            Ok(DelayModel::PerLinkFixed(ds))
        }
        "spatial" => {
            let lo: i64 = parse(&f, 1, "spatial delay lo")?;
            let hi: i64 = parse(&f, 2, "spatial delay hi")?;
            Ok(DelayModel::Spatial(SpatialVariation {
                range: range(lo, hi)?,
                layer_gradient: f64_bits(&f, 3, "layer gradient")?,
                column_wave: f64_bits(&f, 4, "column wave")?,
                jitter: f64_bits(&f, 5, "jitter")?,
            }))
        }
        other => Err(format!("unknown delay model `{other}`")),
    }
}

fn decode_schedule(lines: &mut std::str::Lines<'_>) -> Result<Option<Schedule>, String> {
    let f = fields(lines, "schedule")?;
    match f.first().copied().unwrap_or("") {
        "none" => Ok(None),
        raw => {
            let sources: usize = raw
                .parse()
                .map_err(|_| format!("malformed schedule source count {raw:?}"))?;
            let mut fires: Vec<Vec<Time>> = Vec::with_capacity(sources);
            for expect in 0..sources {
                let f = fields(lines, "s")?;
                let ix: usize = parse(&f, 0, "schedule source index")?;
                if ix != expect {
                    return Err(format!(
                        "schedule source {ix} out of order (expected {expect})"
                    ));
                }
                let mut ts = Vec::with_capacity(f.len() - 1);
                for k in 1..f.len() {
                    ts.push(Time::from_ps(parse(&f, k, "schedule instant")?));
                }
                // Schedule::new would panic on unsorted input; a decoder
                // reports instead.
                if ts.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format!("schedule source {ix} not strictly increasing"));
                }
                fires.push(ts);
            }
            Ok(Some(Schedule::new(fires)))
        }
    }
}

fn range(lo: i64, hi: i64) -> Result<DelayRange, String> {
    if lo > hi || lo < 0 {
        return Err(format!("invalid range [{lo}, {hi}] ps"));
    }
    Ok(DelayRange::new(
        Duration::from_ps(lo),
        Duration::from_ps(hi),
    ))
}

fn f64_bits(fields: &[&str], ix: usize, what: &str) -> Result<f64, String> {
    let raw = fields
        .get(ix)
        .ok_or_else(|| format!("missing {what} value"))?;
    u64::from_str_radix(raw, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("malformed {what} bits {raw:?}"))
}

// ---------------------------------------------------------------------------
// Label tables (bijective; decode rejects anything else).

fn init_label(init: InitState) -> &'static str {
    match init {
        InitState::Clean => "clean",
        InitState::Arbitrary => "arbitrary",
        InitState::AllFlagsSet => "all_flags_set",
        InitState::AllAsleep => "all_asleep",
    }
}

fn init_from_label(label: &str) -> Result<InitState, String> {
    match label {
        "clean" => Ok(InitState::Clean),
        "arbitrary" => Ok(InitState::Arbitrary),
        "all_flags_set" => Ok(InitState::AllFlagsSet),
        "all_asleep" => Ok(InitState::AllAsleep),
        other => Err(format!("unknown init state `{other}`")),
    }
}

fn scenario_from_slug(slug: &str) -> Result<Scenario, String> {
    Scenario::ALL
        .iter()
        .copied()
        .find(|s| s.slug() == slug)
        .ok_or_else(|| format!("unknown scenario slug `{slug}`"))
}

fn queue_from_label(label: &str) -> Result<QueuePolicy, String> {
    QueuePolicy::ALL
        .iter()
        .copied()
        .find(|q| q.label() == label)
        .ok_or_else(|| format!("unknown queue policy `{label}`"))
}

fn node_fault_label(f: NodeFault) -> &'static str {
    match f {
        NodeFault::Byzantine => "byzantine",
        NodeFault::FailSilent => "fail_silent",
    }
}

fn node_fault_from_label(label: &str) -> Result<NodeFault, String> {
    match label {
        "byzantine" => Ok(NodeFault::Byzantine),
        "fail_silent" => Ok(NodeFault::FailSilent),
        other => Err(format!("unknown node fault `{other}`")),
    }
}

fn link_behavior_label(b: LinkBehavior) -> &'static str {
    match b {
        LinkBehavior::Correct => "correct",
        LinkBehavior::StuckZero => "stuck_zero",
        LinkBehavior::StuckOne => "stuck_one",
    }
}

fn link_behavior_from_label(label: &str) -> Result<LinkBehavior, String> {
    match label {
        "correct" => Ok(LinkBehavior::Correct),
        "stuck_zero" => Ok(LinkBehavior::StuckZero),
        "stuck_one" => Ok(LinkBehavior::StuckOne),
        other => Err(format!("unknown link behavior `{other}`")),
    }
}

fn rejoin_label(r: RejoinState) -> &'static str {
    match r {
        RejoinState::Clean => "clean",
        RejoinState::Arbitrary => "arbitrary",
    }
}

fn rejoin_from_label(label: &str) -> Result<RejoinState, String> {
    match label {
        "clean" => Ok(RejoinState::Clean),
        "arbitrary" => Ok(RejoinState::Arbitrary),
        other => Err(format!("unknown rejoin state `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hex_core::Timing;

    fn round_trip(spec: &RunSpec) {
        let bytes = encode_spec(spec);
        let back = decode_spec(&bytes)
            .unwrap_or_else(|e| panic!("decode failed: {e}\n{}", String::from_utf8_lossy(&bytes)));
        assert_eq!(
            encode_spec(&back),
            bytes,
            "re-encoding diverged:\n{}",
            String::from_utf8_lossy(&bytes)
        );
        assert_eq!(spec_hash(&back), spec_hash(spec));
        assert_eq!(back.threads, 0, "threads is not canonical");
    }

    #[test]
    fn default_spec_round_trips() {
        round_trip(&RunSpec::paper().queue(QueuePolicy::Calendar));
    }

    #[test]
    fn every_fault_regime_round_trips() {
        let plan = FaultPlan::none()
            .with_node(3, NodeFault::Byzantine)
            .with_node(17, NodeFault::FailSilent)
            .with_link(5, LinkBehavior::StuckOne)
            .with_link(9, LinkBehavior::Correct);
        let script = FaultScript::none()
            .with(
                Time::from_ps(10_000),
                FaultEvent::Fail(7, NodeFault::Byzantine),
            )
            .with(
                Time::from_ps(45_000),
                FaultEvent::Heal(7, RejoinState::Arbitrary),
            )
            .with(
                Time::from_ps(45_000),
                FaultEvent::LinkDown(2, LinkBehavior::StuckOne),
            )
            .with(Time::from_ps(60_000), FaultEvent::LinkUp(2));
        for faults in [
            FaultRegime::None,
            FaultRegime::Byzantine(2),
            FaultRegime::FailSilent(1),
            FaultRegime::FixedByzantine(1, 19),
            FaultRegime::Mixed {
                byzantine: 1,
                fail_silent: 2,
            },
            FaultRegime::Plan(plan),
            FaultRegime::Script(FaultScript::none()),
            FaultRegime::Script(script),
        ] {
            round_trip(&RunSpec::grid(6, 5).faults(faults));
        }
    }

    #[test]
    fn script_decoder_rejects_unsorted_and_unknown_transitions() {
        let text = encode_spec(&RunSpec::grid(4, 4));
        let text = String::from_utf8(text).unwrap();
        let unsorted = text.replace(
            "faults none",
            "faults script 2\nft 500 fail 3 byzantine\nft 100 heal 3 clean",
        );
        assert!(decode_spec(unsorted.as_bytes())
            .unwrap_err()
            .contains("out of order"));
        let unknown = text.replace("faults none", "faults script 1\nft 500 explode 3");
        assert!(decode_spec(unknown.as_bytes())
            .unwrap_err()
            .contains("unknown fault transition"));
    }

    #[test]
    fn every_init_timing_queue_round_trips() {
        for init in [
            InitState::Clean,
            InitState::Arbitrary,
            InitState::AllFlagsSet,
            InitState::AllAsleep,
        ] {
            for timing in [
                TimingPolicy::Table3,
                TimingPolicy::Generous,
                TimingPolicy::Fixed(Timing::paper_scenario_iii()),
            ] {
                for queue in QueuePolicy::ALL {
                    round_trip(&RunSpec::grid(5, 4).init(init).timing(timing).queue(queue));
                }
            }
        }
    }

    #[test]
    fn every_delay_model_round_trips() {
        for delays in [
            DelayModel::paper(),
            DelayModel::UniformPerLink(DelayRange::paper()),
            DelayModel::Fixed(Duration::from_ps(7500)),
            DelayModel::PerLinkFixed(vec![
                Duration::from_ps(7161),
                Duration::from_ps(8197),
                Duration::from_ps(7700),
            ]),
            DelayModel::Spatial(SpatialVariation {
                range: DelayRange::paper(),
                layer_gradient: 0.3,
                column_wave: -0.125,
                jitter: 0.1 + 0.2, // a value with no short decimal rendering
            }),
        ] {
            round_trip(&RunSpec::grid(4, 4).delays(delays));
        }
    }

    #[test]
    fn schedule_override_round_trips() {
        let sched = Schedule::new(vec![
            vec![Time::from_ps(-200), Time::ZERO, Time::from_ps(550)],
            vec![],
            vec![Time::from_ps(8197)],
        ]);
        round_trip(&RunSpec::grid(4, 3).schedule(sched));
    }

    #[test]
    fn spatial_f64_survive_bit_exactly() {
        let v = SpatialVariation {
            range: DelayRange::paper(),
            layer_gradient: 0.1 + 0.2,
            column_wave: f64::MIN_POSITIVE,
            jitter: -0.0,
        };
        let spec = RunSpec::grid(4, 4).delays(DelayModel::Spatial(v));
        let back = decode_spec(&encode_spec(&spec)).unwrap();
        match back.delays {
            DelayModel::Spatial(got) => {
                assert_eq!(got.layer_gradient.to_bits(), v.layer_gradient.to_bits());
                assert_eq!(got.column_wave.to_bits(), v.column_wave.to_bits());
                assert_eq!(got.jitter.to_bits(), v.jitter.to_bits());
            }
            other => panic!("wrong delay model {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_malformed_input() {
        for (label, bytes) in [
            ("empty", &b""[..]),
            ("bad header", &b"hexcanon/9\n"[..]),
            ("stale epoch", &b"hexcanon/1\ngrid 4 4\n"[..]),
            ("truncated", &b"hexcanon/2\ngrid 4 4\n"[..]),
        ] {
            assert!(decode_spec(bytes).is_err(), "{label} accepted");
        }
        // Field out of canonical order.
        let good = encode_spec(&RunSpec::grid(4, 4));
        let text = String::from_utf8(good).unwrap();
        let swapped = text.replace("runs 250", "seeds 250");
        assert!(decode_spec(swapped.as_bytes()).is_err());
        // Trailing garbage.
        let trailing = format!("{text}junk\n");
        assert!(decode_spec(trailing.as_bytes()).is_err());
        // Unsorted schedule reports instead of panicking.
        let unsorted = text.replace("schedule none", "schedule 1\ns 0 5 5");
        assert!(decode_spec(unsorted.as_bytes())
            .unwrap_err()
            .contains("strictly increasing"));
    }

    #[test]
    fn hash_distinguishes_specs() {
        let base = RunSpec::grid(8, 6).queue(QueuePolicy::Calendar);
        let mut hashes = vec![spec_hash(&base)];
        hashes.push(spec_hash(&base.clone().seed(43)));
        hashes.push(spec_hash(&base.clone().runs(251)));
        hashes.push(spec_hash(&base.clone().scenario(Scenario::Ramp)));
        hashes.push(spec_hash(&base.clone().faults(FaultRegime::Byzantine(1))));
        hashes.push(spec_hash(&base.clone().pulses(2)));
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(
            hashes.len(),
            6,
            "hash collision among trivially distinct specs"
        );
    }

    #[test]
    fn threads_do_not_affect_the_hash() {
        let a = RunSpec::grid(8, 6).threads(1);
        let b = RunSpec::grid(8, 6).threads(64);
        assert_eq!(spec_hash(&a), spec_hash(&b));
        assert_eq!(encode_spec(&a), encode_spec(&b));
    }

    #[test]
    fn shards_do_not_affect_the_hash() {
        // Like `threads`, the tile-shard count is a pure execution
        // strategy: the hexd cache must replay across shard configs.
        let a = RunSpec::grid(8, 6).shards(1);
        let b = RunSpec::grid(8, 6).shards(8);
        assert_eq!(spec_hash(&a), spec_hash(&b));
        assert_eq!(encode_spec(&a), encode_spec(&b));
    }

    #[test]
    fn engine_version_names_the_canon_epoch() {
        let v = engine_version();
        assert!(v.contains("canon2"), "{v}");
        assert!(v.starts_with("hex-sim-"), "{v}");
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }
}
