//! Simulation traces and per-pulse triggering-time matrices.
//!
//! A [`Trace`] records every firing of every node. For grid-shaped
//! topologies it is reshaped into [`PulseView`]s — the matrices
//! `t^(k)_{ℓ,i}` that all of the paper's statistics (Definition 3 skews,
//! histograms, stabilization estimates) are computed from.
//!
//! This is the **materialized reference path**. Sweep workloads that only
//! need the statistics ride the streaming twin instead — a
//! [`PulseBinner`](crate::observe::PulseBinner) observer bins fires to
//! pulses online, byte-identically to [`assign_pulses`] /
//! [`PulseView::from_single_pulse`], without recording a trace at all
//! (see [`crate::observe`]).

use hex_core::{HexGrid, NodeId, TriggerCause};
use hex_des::{Duration, Schedule, Time};

/// A recorded flag-setting message arrival (provenance record; only
/// populated when [`crate::SimConfig::record_arrivals`] is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Delivery time.
    pub at: Time,
    /// Sending node.
    pub from: NodeId,
    /// Receiving port.
    pub port: u8,
}

/// The raw output of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Per node: chronological `(time, cause)` firing records. Faulty nodes
    /// have no records.
    pub fires: Vec<Vec<(Time, TriggerCause)>>,
    /// Per node: flag-setting message arrivals (empty unless
    /// `record_arrivals` was requested).
    pub arrivals: Vec<Vec<Arrival>>,
    /// The faulty node ids of this run (ascending).
    pub faulty: Vec<NodeId>,
    /// The simulation end time that was enforced.
    pub horizon: Time,
}

impl Trace {
    /// Empty all recorded data while keeping the per-node vectors (and
    /// their capacities) alive, so the next run refills without new
    /// trace-sized allocations. The node count is preserved.
    pub fn clear(&mut self) {
        for f in &mut self.fires {
            f.clear();
        }
        for a in &mut self.arrivals {
            a.clear();
        }
        self.faulty.clear();
        self.horizon = Time::ZERO;
    }

    /// Total number of firings across all nodes.
    pub fn total_fires(&self) -> usize {
        self.fires.iter().map(Vec::len).sum()
    }

    /// The single firing time of `node`, if it fired exactly once.
    pub fn unique_fire(&self, node: NodeId) -> Option<Time> {
        match self.fires[node as usize].as_slice() {
            [(t, _)] => Some(*t),
            _ => None,
        }
    }

    /// True iff `node` is in the faulty set.
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.faulty.binary_search(&node).is_ok()
    }
}

/// The triggering-time matrix of one pulse on a `(L+1) × W` grid:
/// `t[ℓ][i]` is the (unique) triggering time of node `(ℓ, i)` for this
/// pulse, `None` for nodes that did not fire (faulty or starved) or fired
/// ambiguously (several firings binned to this pulse — counted in
/// [`PulseView::spurious`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PulseView {
    /// Triggering times, `[layer][column]`.
    pub t: Vec<Vec<Option<Time>>>,
    /// Trigger causes, `[layer][column]`.
    pub cause: Vec<Vec<Option<TriggerCause>>>,
    /// Number of firings that mapped to this pulse beyond the first, per
    /// grid (ambiguity indicator; 0 in every well-separated run).
    pub spurious: usize,
}

impl PulseView {
    /// Grid length `L` (layers are `0..=L`).
    pub fn length(&self) -> u32 {
        self.t.len() as u32 - 1
    }

    /// Grid width `W`.
    pub fn width(&self) -> u32 {
        self.t[0].len() as u32
    }

    /// Triggering time of `(layer, col)` (cyclic column).
    pub fn time(&self, layer: u32, col: i64) -> Option<Time> {
        let w = self.width() as i64;
        self.t[layer as usize][col.rem_euclid(w) as usize]
    }

    /// Trigger cause of `(layer, col)` (cyclic column).
    pub fn trigger_cause(&self, layer: u32, col: i64) -> Option<TriggerCause> {
        let w = self.width() as i64;
        self.cause[layer as usize][col.rem_euclid(w) as usize]
    }

    /// True iff every non-excluded node has a unique triggering time.
    /// `excluded` is an ascending list of node ids (e.g. faulty nodes).
    pub fn complete_except(&self, grid: &HexGrid, excluded: &[NodeId]) -> bool {
        for layer in 0..=self.length() {
            for col in 0..self.width() {
                let n = grid.node(layer, col as i64);
                if excluded.binary_search(&n).is_ok() {
                    continue;
                }
                if self.t[layer as usize][col as usize].is_none() {
                    return false;
                }
            }
        }
        true
    }

    /// A zero-sized placeholder; only useful as a refill target (all
    /// refill APIs reshape it to the grid first).
    pub fn placeholder() -> PulseView {
        PulseView {
            t: Vec::new(),
            cause: Vec::new(),
            spurious: 0,
        }
    }

    /// Resize to an `(l+1) × w` all-`None` matrix, reusing row allocations.
    fn reshape(&mut self, l: u32, w: u32) {
        let rows = (l + 1) as usize;
        self.t.truncate(rows);
        self.cause.truncate(rows);
        self.t.resize_with(rows, Vec::new);
        self.cause.resize_with(rows, Vec::new);
        for row in &mut self.t {
            row.clear();
            row.resize(w as usize, None);
        }
        for row in &mut self.cause {
            row.clear();
            row.resize(w as usize, None);
        }
        self.spurious = 0;
    }

    /// Build a single-pulse view directly from a trace (every node's unique
    /// firing; multiple firings count as spurious and void the entry).
    pub fn from_single_pulse(grid: &HexGrid, trace: &Trace) -> PulseView {
        let mut view = PulseView::placeholder();
        view.refill_single_pulse(grid, trace);
        view
    }

    /// Refill `self` from a single-pulse trace in place — the reuse twin of
    /// [`PulseView::from_single_pulse`]: identical contents, no matrix
    /// allocation when the shape already matches `grid`.
    pub fn refill_single_pulse(&mut self, grid: &HexGrid, trace: &Trace) {
        let (l, w) = (grid.length(), grid.width());
        self.reshape(l, w);
        for layer in 0..=l {
            for col in 0..w {
                let n = grid.node(layer, col as i64);
                let fs = &trace.fires[n as usize];
                match fs.as_slice() {
                    [] => {}
                    [(time, c)] => {
                        self.t[layer as usize][col as usize] = Some(*time);
                        self.cause[layer as usize][col as usize] = Some(*c);
                    }
                    more => {
                        self.spurious += more.len() - 1;
                        self.t[layer as usize][col as usize] = Some(more[0].0);
                        self.cause[layer as usize][col as usize] = Some(more[0].1);
                    }
                }
            }
        }
    }
}

/// Truncate or pad `views` to exactly `pulses` placeholder-backed entries,
/// keeping existing matrix allocations for reuse.
pub(crate) fn ensure_views(views: &mut Vec<PulseView>, pulses: usize) {
    views.truncate(pulses);
    while views.len() < pulses {
        views.push(PulseView::placeholder());
    }
}

/// Bin the firings of a multi-pulse run into per-pulse views.
///
/// Each node's expected triggering time for pulse `k` is its column's
/// layer-0 schedule entry plus `layer · d_mid` propagation (with `d_mid` the
/// midpoint delay); each firing is assigned to the pulse with the nearest
/// expected time. This is the paper's "unambiguously assigning a
/// corresponding pulse number to a triggering time" post-processing
/// (Section 4.4) — unambiguous because pulse separation times dwarf
/// accumulated jitter; any residual ambiguity is surfaced via
/// [`PulseView::spurious`].
pub fn assign_pulses(
    grid: &HexGrid,
    trace: &Trace,
    schedule: &Schedule,
    d_mid: Duration,
) -> Vec<PulseView> {
    let mut views = Vec::new();
    assign_pulses_into(&mut views, grid, trace, schedule, d_mid);
    views
}

/// In-place twin of [`assign_pulses`]: bin the firings into `views`,
/// reusing its matrices when the shapes match. Produces exactly the same
/// views as [`assign_pulses`], regardless of what `views` held before.
pub fn assign_pulses_into(
    views: &mut Vec<PulseView>,
    grid: &HexGrid,
    trace: &Trace,
    schedule: &Schedule,
    d_mid: Duration,
) {
    let pulses = schedule.pulses();
    let (l, w) = (grid.length(), grid.width());
    ensure_views(views, pulses);
    for v in views.iter_mut() {
        v.reshape(l, w);
    }

    // Per-pulse fallback base times for mute sources.
    let base: Vec<Time> = (0..pulses)
        .map(|k| schedule.t_min(k).unwrap_or(Time::ZERO))
        .collect();

    for layer in 0..=l {
        for col in 0..w {
            let n = grid.node(layer, col as i64);
            let col_sched = schedule.source(col as usize);
            let expected: Vec<Time> = (0..pulses)
                .map(|k| {
                    let b = col_sched.get(k).copied().unwrap_or(base[k]);
                    b + d_mid.times(layer as i64)
                })
                .collect();
            for &(time, cause) in &trace.fires[n as usize] {
                // Nearest expected pulse (expected is sorted).
                let k = match expected.binary_search(&time) {
                    Ok(k) => k,
                    Err(ins) => {
                        if ins == 0 {
                            0
                        } else if ins >= pulses {
                            pulses - 1
                        } else {
                            let before = time - expected[ins - 1];
                            let after = expected[ins] - time;
                            if before.abs() <= after.abs() {
                                ins - 1
                            } else {
                                ins
                            }
                        }
                    }
                };
                let slot = &mut views[k].t[layer as usize][col as usize];
                if slot.is_none() {
                    *slot = Some(time);
                    views[k].cause[layer as usize][col as usize] = Some(cause);
                } else {
                    views[k].spurious += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, InitState, SimConfig};
    use hex_clock::{PulseTrain, Scenario};
    use hex_core::Timing;
    use hex_des::SimRng;

    #[test]
    fn single_pulse_view_roundtrip() {
        let grid = HexGrid::new(5, 6);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 6]);
        let trace = simulate(grid.graph(), &sched, &SimConfig::fault_free(), 3);
        let view = PulseView::from_single_pulse(&grid, &trace);
        assert_eq!(view.length(), 5);
        assert_eq!(view.width(), 6);
        assert_eq!(view.spurious, 0);
        assert!(view.complete_except(&grid, &[]));
        for n in grid.graph().node_ids() {
            let c = grid.coord_of(n);
            assert_eq!(view.time(c.layer, c.col as i64), trace.unique_fire(n));
        }
    }

    #[test]
    fn cyclic_column_access() {
        let grid = HexGrid::new(2, 5);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 5]);
        let trace = simulate(grid.graph(), &sched, &SimConfig::fault_free(), 4);
        let view = PulseView::from_single_pulse(&grid, &trace);
        assert_eq!(view.time(1, -1), view.time(1, 4));
        assert_eq!(view.time(1, 5), view.time(1, 0));
    }

    #[test]
    fn multi_pulse_assignment_is_exact_for_clean_runs() {
        let grid = HexGrid::new(6, 6);
        let mut rng = SimRng::seed_from_u64(9);
        let train = PulseTrain::new(Scenario::RandomDPlus, 5, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 10);
        let views = assign_pulses(&grid, &trace, &sched, hex_core::DelayRange::paper().mid());
        assert_eq!(views.len(), 5);
        for (k, v) in views.iter().enumerate() {
            assert_eq!(v.spurious, 0, "pulse {k}");
            assert!(v.complete_except(&grid, &[]), "pulse {k} incomplete");
        }
        // Monotone: pulse k+1 strictly after pulse k at every node.
        for layer in 0..=6 {
            for col in 0..6i64 {
                for k in 0..4 {
                    assert!(
                        views[k].time(layer, col).unwrap() < views[k + 1].time(layer, col).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn arbitrary_init_assignment_reports_consistency_late() {
        let grid = HexGrid::new(4, 6);
        let mut rng = SimRng::seed_from_u64(11);
        let train = PulseTrain::new(Scenario::Zero, 6, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            init: InitState::Arbitrary,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 12);
        let views = assign_pulses(&grid, &trace, &sched, hex_core::DelayRange::paper().mid());
        // The final pulse must be complete (stabilization well before it).
        assert!(views.last().unwrap().complete_except(&grid, &[]));
    }

    #[test]
    fn trace_helpers() {
        let grid = HexGrid::new(2, 4);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 4]);
        let trace = simulate(grid.graph(), &sched, &SimConfig::fault_free(), 5);
        assert_eq!(trace.total_fires(), grid.node_count());
        assert!(!trace.is_faulty(grid.node(1, 1)));
        assert!(trace.unique_fire(grid.node(2, 0)).is_some());
    }
}
