//! Trace-level invariants of Algorithm 1, checkable on any run.
//!
//! These are the semantic guarantees the state machines of Fig. 7 enforce
//! by construction, expressed as post-hoc predicates over recorded traces:
//!
//! * **sleep separation** — a node never fires twice within `T−_sleep`
//!   (the firing SM is in `sleeping` and the guard is not evaluated);
//! * **source conformance** — sources fire exactly at their scheduled
//!   instants (and never otherwise);
//! * **fault silence** — faulty nodes never record a firing.
//!
//! The property suite drives randomized configurations (grid shapes,
//! scenarios, fault mixes, arbitrary initial states) through these
//! predicates; `hex-analysis::checker` adds the message-level rules.

use hex_core::{NodeId, PulseGraph, Role};
use hex_des::{Duration, Schedule, Time};

use crate::trace::Trace;

/// A violated trace invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// Two firings of one node closer than the minimum sleep.
    SleepViolated {
        /// The node.
        node: NodeId,
        /// Gap between the two firings (ns).
        gap_ns: f64,
    },
    /// A source fired at an unscheduled time (or missed a scheduled one
    /// inside the horizon).
    SourceMismatch {
        /// The source node.
        node: NodeId,
    },
    /// A faulty node recorded a firing.
    FaultyNodeFired {
        /// The node.
        node: NodeId,
    },
}

/// Check the sleep-separation invariant: consecutive firings of every
/// forwarder are at least `t_sleep_min` apart.
pub fn check_sleep_separation(
    graph: &PulseGraph,
    trace: &Trace,
    t_sleep_min: Duration,
) -> Result<(), InvariantViolation> {
    for n in graph.node_ids() {
        if graph.role(n) != Role::Forwarder {
            continue;
        }
        for w in trace.fires[n as usize].windows(2) {
            let gap = w[1].0 - w[0].0;
            if gap < t_sleep_min {
                return Err(InvariantViolation::SleepViolated {
                    node: n,
                    gap_ns: gap.ns(),
                });
            }
        }
    }
    Ok(())
}

/// Check that every correct source fired exactly its scheduled instants
/// (clipped to the horizon).
pub fn check_source_conformance(
    graph: &PulseGraph,
    trace: &Trace,
    schedule: &Schedule,
) -> Result<(), InvariantViolation> {
    let sources: Vec<NodeId> = graph.source_ids().collect();
    for (ix, &s) in sources.iter().enumerate() {
        if trace.is_faulty(s) {
            continue;
        }
        let expected: Vec<Time> = schedule
            .source(ix)
            .iter()
            .copied()
            .filter(|&t| t <= trace.horizon)
            .collect();
        let actual: Vec<Time> = trace.fires[s as usize].iter().map(|&(t, _)| t).collect();
        if expected != actual {
            return Err(InvariantViolation::SourceMismatch { node: s });
        }
    }
    Ok(())
}

/// Check that declared-faulty nodes recorded no firings.
pub fn check_faulty_silent(trace: &Trace) -> Result<(), InvariantViolation> {
    for &f in &trace.faulty {
        if !trace.fires[f as usize].is_empty() {
            return Err(InvariantViolation::FaultyNodeFired { node: f });
        }
    }
    Ok(())
}

/// Run all trace invariants.
pub fn check_all(
    graph: &PulseGraph,
    trace: &Trace,
    schedule: &Schedule,
    t_sleep_min: Duration,
) -> Result<(), InvariantViolation> {
    check_sleep_separation(graph, trace, t_sleep_min)?;
    check_source_conformance(graph, trace, schedule)?;
    check_faulty_silent(trace)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, InitState, SimConfig};
    use hex_clock::{PulseTrain, Scenario};
    use hex_core::fault::{forwarder_candidates, place_condition1};
    use hex_core::{FaultPlan, HexGrid, NodeFault, Timing};
    use hex_des::SimRng;
    use proptest::prelude::*;

    #[test]
    fn clean_single_pulse_passes_all() {
        let grid = HexGrid::new(8, 6);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 6]);
        let cfg = SimConfig::fault_free();
        let trace = simulate(grid.graph(), &sched, &cfg, 1);
        check_all(grid.graph(), &trace, &sched, cfg.timing.sleep.lo).unwrap();
    }

    #[test]
    fn detects_fabricated_sleep_violation() {
        let grid = HexGrid::new(4, 6);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 6]);
        let cfg = SimConfig::fault_free();
        let mut trace = simulate(grid.graph(), &sched, &cfg, 2);
        let n = grid.node(2, 2) as usize;
        let (t, c) = trace.fires[n][0];
        trace.fires[n].push((t + Duration::from_ps(10), c));
        assert!(matches!(
            check_sleep_separation(grid.graph(), &trace, cfg.timing.sleep.lo),
            Err(InvariantViolation::SleepViolated { .. })
        ));
    }

    #[test]
    fn detects_fabricated_source_mismatch() {
        let grid = HexGrid::new(4, 6);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 6]);
        let cfg = SimConfig::fault_free();
        let mut trace = simulate(grid.graph(), &sched, &cfg, 3);
        trace.fires[0].clear();
        assert!(matches!(
            check_source_conformance(grid.graph(), &trace, &sched),
            Err(InvariantViolation::SourceMismatch { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every randomized configuration — grid shape, scenario, fault
        /// count/kind, initial-state regime, seed — satisfies all trace
        /// invariants.
        #[test]
        fn prop_invariants_hold(
            l in 3u32..10,
            w in 4u32..10,
            scenario_ix in 0usize..4,
            f in 0usize..3,
            byzantine in any::<bool>(),
            arbitrary_init in any::<bool>(),
            pulses in 1usize..4,
            seed in any::<u64>(),
        ) {
            let grid = HexGrid::new(l, w);
            let scenario = Scenario::ALL[scenario_ix];
            let mut rng = SimRng::seed_from_u64(seed);
            let sched = PulseTrain::new(scenario, pulses, Duration::from_ns(300.0))
                .generate(w, &mut rng);
            let candidates = forwarder_candidates(grid.graph());
            let placed = place_condition1(grid.graph(), &candidates, f, &mut rng, 2_000)
                .unwrap_or_default();
            let kind = if byzantine { NodeFault::Byzantine } else { NodeFault::FailSilent };
            let cfg = SimConfig {
                timing: Timing::paper_scenario_iii(),
                faults: FaultPlan::none().with_nodes(&placed, kind),
                init: if arbitrary_init { InitState::Arbitrary } else { InitState::Clean },
                ..SimConfig::fault_free()
            };
            let trace = simulate(grid.graph(), &sched, &cfg, seed);
            prop_assert!(check_all(grid.graph(), &trace, &sched, cfg.timing.sleep.lo).is_ok());
        }

        /// Clean-start fault-free runs additionally fire exactly once per
        /// node per pulse.
        #[test]
        fn prop_exactly_once_per_pulse(
            l in 3u32..8,
            w in 4u32..8,
            pulses in 1usize..4,
            seed in any::<u64>(),
        ) {
            let grid = HexGrid::new(l, w);
            let mut rng = SimRng::seed_from_u64(seed);
            let sched = PulseTrain::new(Scenario::Zero, pulses, Duration::from_ns(300.0))
                .generate(w, &mut rng);
            let cfg = SimConfig {
                timing: Timing::paper_scenario_iii(),
                ..SimConfig::fault_free()
            };
            let trace = simulate(grid.graph(), &sched, &cfg, seed);
            for n in grid.graph().node_ids() {
                prop_assert_eq!(trace.fires[n as usize].len(), pulses);
            }
        }
    }
}
