//! Declarative, buildable run descriptions: the experiment vocabulary of
//! the paper's evaluation (Sections 4.2–4.4) as a first-class API.
//!
//! A [`RunSpec`] owns everything that defines a batch of independent
//! simulation runs: grid shape, layer-0 [`Scenario`], [`FaultRegime`],
//! Table-3 timing derivation ([`TimingPolicy`]), initial states, pulse
//! count and separation, the delay model, and the per-run seed policy.
//! Batches execute on the parallel runner of [`crate::batch`], either
//! materialized ([`RunSpec::run_batch`]) or streamed through a
//! [`Reducer`](crate::batch::Reducer) ([`RunSpec::fold`]) so that per-run
//! map+reduce never holds a whole 250-run sweep in memory.
//!
//! ```
//! use hex_clock::Scenario;
//! use hex_sim::spec::{FaultRegime, RunSpec};
//!
//! // Two runs of the paper's scenario (iv) with one Byzantine node on a
//! // small grid (the full evaluation uses `RunSpec::paper()`: 50×20, 250
//! // runs).
//! let spec = RunSpec::grid(8, 6)
//!     .scenario(Scenario::Ramp)
//!     .faults(FaultRegime::Byzantine(1))
//!     .runs(2)
//!     .seed(7)
//!     .threads(1);
//! let batch = spec.run_batch();
//! assert_eq!(batch.len(), 2);
//! assert_eq!(batch[0].faulty.len(), 1);
//! assert_eq!(batch[0].view().width(), 6);
//! ```
//!
//! The same description reproduces, bit for bit, what the pre-`RunSpec`
//! hand wiring (`Schedule::single_pulse` + `SimConfig { .. }` + `simulate`)
//! produced — `tests/spec_equivalence.rs` at the workspace root pins this.

use hex_clock::{PulseTrain, Scenario};
use hex_core::condition2::{Condition2, TABLE3_SIGMA_NS};
use hex_core::fault::{forwarder_candidates, place_condition1, satisfies_condition1};
use hex_core::{
    DelayModel, FaultPlan, FaultScript, HexGrid, NodeFault, NodeId, PulseGraph, Timing, D_MINUS,
    D_PLUS,
};
use hex_des::{Duration, Schedule, SimRng};

use crate::batch::{self, Reducer};
use crate::engine::{
    simulate, simulate_into, simulate_observed_into, InitState, QueuePolicy, SimConfig, SimScratch,
};
use crate::knobs;
use crate::observe::PulseBinner;
use crate::trace::{assign_pulses_into, ensure_views, PulseView, Trace};

/// Per-run RNG salt for single-pulse batches (the run's scenario offsets
/// and fault placement are drawn from `seed + run` XOR this).
pub const SINGLE_PULSE_SALT: u64 = 0x5EED_0001;

/// Per-run RNG salt for multi-pulse (stabilization) batches.
pub const MULTI_PULSE_SALT: u64 = 0x5EED_0002;

/// The Condition-2 timing for a scenario, using the paper's Table-3 stable
/// skews.
pub fn scenario_timing(scenario: Scenario) -> Timing {
    Condition2::paper(table3_sigma(scenario)).timing()
}

/// The Condition-2 pulse separation `S` for a scenario (Table 3).
pub fn scenario_separation(scenario: Scenario) -> Duration {
    Condition2::paper(table3_sigma(scenario))
        .derive()
        .separation
}

/// The Table-3 stable-skew input σ for a scenario.
fn table3_sigma(scenario: Scenario) -> Duration {
    let ix = Scenario::ALL
        .iter()
        .position(|&s| s == scenario)
        .expect("known scenario");
    Duration::from_ns(TABLE3_SIGMA_NS[ix])
}

/// Fault regime of a run batch: how the fault plan of each run is drawn.
#[derive(Debug, Clone)]
pub enum FaultRegime {
    /// No faults.
    None,
    /// `f` Byzantine nodes placed per run under Condition 1.
    Byzantine(usize),
    /// `f` fail-silent nodes placed per run under Condition 1.
    FailSilent(usize),
    /// A fixed Byzantine node (Fig. 13 uses `(1, 19)`).
    FixedByzantine(u32, u32),
    /// `byzantine` Byzantine plus `fail_silent` fail-silent nodes, jointly
    /// placed so the union still satisfies Condition 1 (the `hexctl` CLI's
    /// mixed regime).
    Mixed {
        /// Byzantine node count.
        byzantine: usize,
        /// Fail-silent node count.
        fail_silent: usize,
    },
    /// An explicit, fixed fault plan used verbatim in every run (custom
    /// per-link behaviours, crash clusters, adversarial constructions).
    Plan(FaultPlan),
    /// A dynamic fault campaign: the grid starts fault-free and the same
    /// [`FaultScript`] timeline of mid-run transitions (bursts, crash +
    /// rejoin, churn, link flaps) replays in every run. Script-internal
    /// randomness (Byzantine stuck directions, adversarial rejoin states)
    /// draws from a salted per-run stream, so the fault-free prefix of a
    /// scripted run is byte-identical to [`FaultRegime::None`].
    Script(FaultScript),
}

impl FaultRegime {
    /// The nominal fault count `f`.
    pub fn f(&self) -> usize {
        match self {
            FaultRegime::None => 0,
            FaultRegime::Byzantine(f) | FaultRegime::FailSilent(f) => *f,
            FaultRegime::FixedByzantine(..) => 1,
            FaultRegime::Mixed {
                byzantine,
                fail_silent,
            } => byzantine + fail_silent,
            FaultRegime::Plan(p) => p.fault_count(),
            // Scripted runs start fault-free; the static count stays 0 so
            // horizons and exclusion masks match the fault-free baseline.
            FaultRegime::Script(_) => 0,
        }
    }

    /// The script of a [`FaultRegime::Script`] regime, if any.
    pub fn script(&self) -> Option<&FaultScript> {
        match self {
            FaultRegime::Script(s) => Some(s),
            _ => None,
        }
    }

    /// Materialize the fault plan for one run on a hex grid.
    pub fn plan(&self, grid: &HexGrid, rng: &mut SimRng) -> FaultPlan {
        self.plan_on(grid.graph(), rng)
    }

    /// Materialize the fault plan for one run on any pulse graph (used by
    /// the Section-5 topology variants, e.g. the Fig.-21 doubling rings).
    pub fn plan_on(&self, graph: &PulseGraph, rng: &mut SimRng) -> FaultPlan {
        match *self {
            FaultRegime::None | FaultRegime::Script(_) => FaultPlan::none(),
            FaultRegime::Plan(ref plan) => plan.clone(),
            FaultRegime::FixedByzantine(layer, col) => {
                // The column wraps modulo the layer's width, like
                // `HexGrid::node` (cylindric columns).
                let ring: Vec<NodeId> = graph
                    .node_ids()
                    .filter(|&n| graph.coord(n).is_some_and(|c| c.layer == layer))
                    .collect();
                assert!(!ring.is_empty(), "no nodes on layer {layer}");
                let col = col % ring.len() as u32;
                let node = ring
                    .into_iter()
                    .find(|&n| graph.coord(n).is_some_and(|c| c.col == col))
                    .expect("fixed Byzantine coordinate exists in the graph");
                FaultPlan::none().with_node(node, NodeFault::Byzantine)
            }
            FaultRegime::Byzantine(f) | FaultRegime::FailSilent(f) => {
                let kind = if matches!(self, FaultRegime::Byzantine(_)) {
                    NodeFault::Byzantine
                } else {
                    NodeFault::FailSilent
                };
                let candidates = forwarder_candidates(graph);
                let placed = place_condition1(graph, &candidates, f, rng, 10_000)
                    .expect("Condition-1 placement feasible");
                FaultPlan::none().with_nodes(&placed, kind)
            }
            FaultRegime::Mixed {
                byzantine,
                fail_silent,
            } => {
                let candidates = forwarder_candidates(graph);
                let byz = place_condition1(graph, &candidates, byzantine, rng, 10_000)
                    .expect("Condition-1 placement for Byzantine nodes");
                let mut plan = FaultPlan::none().with_nodes(&byz, NodeFault::Byzantine);
                if fail_silent > 0 {
                    let remaining: Vec<NodeId> = candidates
                        .iter()
                        .copied()
                        .filter(|n| !byz.contains(n))
                        .collect();
                    // Keep Condition 1 over the union by rejection on the
                    // combined set.
                    let mut silent = Vec::new();
                    for _ in 0..10_000 {
                        let pick = place_condition1(graph, &remaining, fail_silent, rng, 1)
                            .unwrap_or_default();
                        if pick.len() == fail_silent {
                            let mut union = byz.clone();
                            union.extend(&pick);
                            union.sort_unstable();
                            if satisfies_condition1(graph, &union) {
                                silent = pick;
                                break;
                            }
                        }
                    }
                    assert_eq!(
                        silent.len(),
                        fail_silent,
                        "combined Condition-1 placement infeasible"
                    );
                    plan = plan.with_nodes(&silent, NodeFault::FailSilent);
                }
                plan
            }
        }
    }
}

/// How a [`RunSpec`] resolves the Algorithm-1 timeout parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimingPolicy {
    /// The scenario's Table-3 timeouts via the Condition-2 derivation (the
    /// evaluation's default for every table and figure batch).
    Table3,
    /// Generous single-pulse timeouts ([`Timing::generous`]); right for
    /// one-off waves where stabilization timing is irrelevant.
    Generous,
    /// An explicit, fixed [`Timing`].
    Fixed(Timing),
}

/// The result of one run: per-pulse triggering-time matrices plus the
/// faulty node set (single-pulse runs have exactly one view).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunView {
    /// Per-pulse triggering-time matrices (one for single-pulse specs).
    pub views: Vec<PulseView>,
    /// Faulty nodes of this run (ascending ids).
    pub faulty: Vec<NodeId>,
}

impl RunView {
    /// The single-pulse view (the first pulse of a multi-pulse run).
    pub fn view(&self) -> &PulseView {
        &self.views[0]
    }
}

/// The fully materialized inputs of one run: what [`crate::simulate`] gets.
#[derive(Debug, Clone)]
pub struct RunInputs {
    /// The engine seed (`spec.seed + run`).
    pub seed: u64,
    /// The layer-0 schedule of this run.
    pub schedule: Schedule,
    /// The engine configuration of this run.
    pub config: SimConfig,
}

/// A declarative description of a batch of independent simulation runs.
///
/// Construct with [`RunSpec::grid`] / [`RunSpec::paper`] /
/// [`RunSpec::small`] / [`RunSpec::from_env`], refine with the builder
/// methods, then execute with [`RunSpec::run_batch`] (materialize all
/// views), [`RunSpec::fold`] (streaming map+reduce), or
/// [`RunSpec::run_single`] / [`RunSpec::trace`] (one run).
///
/// Fields are public so thin drivers can read the shape back (`spec.runs`,
/// `spec.length`, …).
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Grid length `L` (layers above the sources).
    pub length: u32,
    /// Grid width `W` (columns around the cylinder; also the source count).
    pub width: u32,
    /// Runs in the batch (the paper uses 250).
    pub runs: usize,
    /// Base seed; run `r` simulates with `seed + r`.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Layer-0 skew scenario.
    pub scenario: Scenario,
    /// Fault regime.
    pub faults: FaultRegime,
    /// Initial node states.
    pub init: InitState,
    /// Pulses per run; 1 selects the single-pulse regime of Section 4.2/4.3,
    /// >1 the Section-4.4 pulse train at the scenario's Table-3 separation.
    pub pulses: usize,
    /// Timeout parameter policy.
    pub timing: TimingPolicy,
    /// Link-delay model.
    pub delays: DelayModel,
    /// Future-event-list implementation (byte-identical output across
    /// policies; a pure performance knob).
    pub queue: QueuePolicy,
    /// Tile shards per run (1 = serial engine; byte-identical output at
    /// any count; a pure performance knob, like `threads` not part of
    /// the canonical encoding). Defaults to the `HEX_SHARDS` knob.
    pub shards: usize,
    /// Explicit layer-0 schedule override (adversarial constructions);
    /// `None` derives the schedule from `scenario`/`pulses` per run.
    pub schedule: Option<Schedule>,
}

impl RunSpec {
    /// A spec on an `L × W` grid with the evaluation's defaults: 250 runs,
    /// seed 42, all worker threads, scenario (i), fault-free, clean init,
    /// one pulse, Table-3 timing, paper delays.
    pub fn grid(length: u32, width: u32) -> Self {
        RunSpec {
            length,
            width,
            runs: 250,
            seed: 42,
            threads: batch::default_threads(),
            scenario: Scenario::Zero,
            faults: FaultRegime::None,
            init: InitState::Clean,
            pulses: 1,
            timing: TimingPolicy::Table3,
            delays: DelayModel::paper(),
            queue: QueuePolicy::default(),
            shards: crate::engine::shard_default(),
            schedule: None,
        }
    }

    /// The paper's setup: 50×20 grid, 250 runs.
    pub fn paper() -> Self {
        RunSpec::grid(50, 20)
    }

    /// A smaller setup for unit tests and criterion benches.
    pub fn small() -> Self {
        RunSpec::grid(12, 8).runs(20).threads(2)
    }

    /// Paper setup with `HEX_RUNS` / `HEX_SEED` / `HEX_THREADS` /
    /// `HEX_QUEUE` applied.
    pub fn from_env() -> Self {
        RunSpec::paper().with_env()
    }

    /// Apply the `HEX_RUNS` / `HEX_SEED` / `HEX_THREADS` / `HEX_QUEUE`
    /// environment knobs on top of this spec (drivers with non-paper
    /// defaults chain this: `RunSpec::grid(12, 4).runs(100).with_env()`).
    pub fn with_env(mut self) -> Self {
        if let Some(v) = knobs::parsed("HEX_RUNS", "a number") {
            self.runs = v;
        }
        if let Some(v) = knobs::parsed("HEX_SEED", "a number") {
            self.seed = v;
        }
        if let Some(v) = knobs::parsed("HEX_THREADS", "a number") {
            self.threads = v;
        }
        if let Some(v) = knobs::parsed("HEX_QUEUE", "binary_heap, quad_heap or calendar") {
            self.queue = v;
        }
        self
    }

    /// Set the layer-0 scenario.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Set the fault regime.
    pub fn faults(mut self, faults: FaultRegime) -> Self {
        self.faults = faults;
        self
    }

    /// Set the initial-state regime (stabilization experiments use
    /// [`InitState::Arbitrary`]).
    pub fn init(mut self, init: InitState) -> Self {
        self.init = init;
        self
    }

    /// Set the pulse count (>1 switches to the Section-4.4 pulse train).
    pub fn pulses(mut self, pulses: usize) -> Self {
        self.pulses = pulses;
        self
    }

    /// Set the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the run count.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Set the worker-thread count (0 = available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the timeout policy.
    pub fn timing(mut self, timing: TimingPolicy) -> Self {
        self.timing = timing;
        self
    }

    /// Set the link-delay model.
    pub fn delays(mut self, delays: DelayModel) -> Self {
        self.delays = delays;
        self
    }

    /// Set the future-event-list implementation (the `HEX_QUEUE` knob;
    /// byte-identical output across policies).
    pub fn queue(mut self, queue: QueuePolicy) -> Self {
        self.queue = queue;
        self
    }

    /// Set the intra-run tile-shard count (the `HEX_SHARDS` knob; 1 =
    /// the serial engine; byte-identical output at any count).
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be 1 or more");
        self.shards = shards;
        self
    }

    /// Use an explicit layer-0 schedule in every run instead of deriving
    /// one from the scenario (adversarial constructions, Fig. 5/17).
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Build the hex grid described by this spec.
    pub fn hex_grid(&self) -> HexGrid {
        HexGrid::new(self.length, self.width)
    }

    /// The effective timeout parameters under the spec's [`TimingPolicy`].
    pub fn effective_timing(&self) -> Timing {
        match self.timing {
            TimingPolicy::Table3 => scenario_timing(self.scenario),
            TimingPolicy::Generous => Timing::generous(),
            TimingPolicy::Fixed(t) => t,
        }
    }

    /// The scenario's Table-3 pulse separation `S`.
    pub fn separation(&self) -> Duration {
        scenario_separation(self.scenario)
    }

    /// The engine seed of run `run`.
    pub fn run_seed(&self, run: usize) -> u64 {
        self.seed + run as u64
    }

    /// The per-run RNG salt ([`SINGLE_PULSE_SALT`] or
    /// [`MULTI_PULSE_SALT`], by pulse count).
    pub fn salt(&self) -> u64 {
        if self.pulses <= 1 {
            SINGLE_PULSE_SALT
        } else {
            MULTI_PULSE_SALT
        }
    }

    /// Materialize the inputs of run `run`: seed, layer-0 schedule, and
    /// engine configuration. This is the single point where the experiment
    /// vocabulary meets [`crate::simulate`]; drivers and tests that need
    /// raw [`Trace`]s go through here instead of assembling
    /// [`SimConfig`]/[`Schedule`] by hand.
    pub fn materialize(&self, run: usize) -> RunInputs {
        self.inputs_on(self.hex_grid().graph(), run)
    }

    fn inputs_with(&self, grid: &HexGrid, run: usize) -> RunInputs {
        self.inputs_on(grid.graph(), run)
    }

    /// The one place run inputs are derived, for hex grids and custom
    /// topologies alike — any change to the schedule derivation or the
    /// engine configuration belongs here.
    fn inputs_on(&self, graph: &PulseGraph, run: usize) -> RunInputs {
        let seed = self.run_seed(run);
        let mut rng = SimRng::seed_from_u64(seed ^ self.salt());
        let schedule = match &self.schedule {
            Some(s) => s.clone(),
            None if self.pulses <= 1 => Schedule::single_pulse(
                self.scenario
                    .single_pulse_times(self.width, D_MINUS, D_PLUS, &mut rng),
            ),
            None => PulseTrain::new(self.scenario, self.pulses, self.separation())
                .generate(self.width, &mut rng),
        };
        let faults = self.faults.plan_on(graph, &mut rng);
        let config = SimConfig {
            delays: self.delays.clone(),
            timing: self.effective_timing(),
            faults,
            script: self.faults.script().cloned(),
            init: self.init,
            horizon: None,
            record_arrivals: false,
            queue: self.queue,
            // Like `threads`, the dispatch strategy is not part of the
            // spec vocabulary (and not canonically encoded): batched and
            // scalar kernels are byte-identical, so the process-wide
            // `HEX_BATCH` default applies.
            batch: crate::engine::batch_default(),
            shards: self.shards,
        };
        RunInputs {
            seed,
            schedule,
            config,
        }
    }

    /// Execute run `run` and return its raw [`Trace`] together with the
    /// schedule that drove it (waveform export, custom post-processing).
    pub fn trace(&self, run: usize) -> (Trace, Schedule) {
        let grid = self.hex_grid();
        let inputs = self.inputs_with(&grid, run);
        let trace = simulate(grid.graph(), &inputs.schedule, &inputs.config, inputs.seed);
        (trace, inputs.schedule)
    }

    /// Execute run `run` of this spec on an arbitrary [`PulseGraph`]
    /// (Section-5 topology variants). The schedule is derived from the
    /// spec, with `width` as the source count; the fault regime is placed
    /// via [`FaultRegime::plan_on`].
    pub fn simulate_on(&self, graph: &PulseGraph, run: usize) -> Trace {
        let inputs = self.inputs_on(graph, run);
        simulate(graph, &inputs.schedule, &inputs.config, inputs.seed)
    }

    /// Execute one run (sharing the grid passed in) and reduce it to its
    /// per-pulse views plus faulty set.
    ///
    /// Equivalent to [`RunSpec::run_one_into`] on a fresh scratch; loops
    /// over many runs should hold one [`SimScratch`] and use that instead.
    pub fn run_one_with(&self, grid: &HexGrid, run: usize) -> RunView {
        let mut scratch = SimScratch::new();
        self.run_one_into(grid, &mut scratch, run);
        scratch.out
    }

    /// Execute one run through `scratch`, recycling the event queue, node
    /// states, trace storage and view matrices of whatever ran before, and
    /// return the run's views (borrowed from the scratch, which stays
    /// reusable). Byte-identical to [`RunSpec::run_one_with`] — the batch
    /// paths call this with one scratch per worker thread so a sweep
    /// performs O(threads) rather than O(runs) trace-sized allocations.
    pub fn run_one_into<'s>(
        &self,
        grid: &HexGrid,
        scratch: &'s mut SimScratch,
        run: usize,
    ) -> &'s RunView {
        let inputs = self.inputs_with(grid, run);
        simulate_into(
            scratch,
            grid.graph(),
            &inputs.schedule,
            &inputs.config,
            inputs.seed,
        );
        let mid = self.delays.envelope().mid();
        let (trace, out) = scratch.trace_and_out();
        out.faulty.clear();
        out.faulty.extend_from_slice(&trace.faulty);
        if inputs.schedule.pulses() <= 1 {
            ensure_views(&mut out.views, 1);
            out.views[0].refill_single_pulse(grid, trace);
        } else {
            assign_pulses_into(&mut out.views, grid, trace, &inputs.schedule, mid);
        }
        &scratch.out
    }

    /// Execute one run through `scratch` on the **streaming extraction
    /// path**: every firing is binned to its pulse online by the scratch's
    /// [`PulseBinner`] — no trace fires are recorded and no
    /// [`PulseView`] matrices exist. The binner's per-pulse slots are
    /// identical to the view matrices [`RunSpec::run_one_into`] would have
    /// produced (pinned by the observer-equivalence walls); extraction
    /// helpers in `hex-analysis` read them directly.
    pub fn run_one_observed_into<'s>(
        &self,
        grid: &HexGrid,
        scratch: &'s mut SimScratch,
        run: usize,
    ) -> &'s PulseBinner {
        let inputs = self.inputs_with(grid, run);
        let d_mid = self.delays.envelope().mid();
        simulate_observed_into(
            scratch,
            grid,
            &inputs.schedule,
            &inputs.config,
            inputs.seed,
            d_mid,
        )
    }

    /// Fresh-scratch convenience for [`RunSpec::run_one_observed_into`]
    /// (tests, doctests, one-off extractions); loops should hold one
    /// [`SimScratch`] and use the `_into` twin.
    pub fn run_one_observed(&self, grid: &HexGrid, run: usize) -> PulseBinner {
        let mut scratch = SimScratch::new();
        self.run_one_observed_into(grid, &mut scratch, run);
        scratch.into_binner()
    }

    /// Execute the whole batch in parallel, materializing every run's
    /// views in run-index order. Each worker thread recycles one
    /// [`SimScratch`] for its engine-side buffers; the returned views are
    /// owned per run (that is what materializing means).
    pub fn run_batch(&self) -> Vec<RunView> {
        let grid = self.hex_grid();
        batch::run_batch_with(self.runs, self.threads, SimScratch::new, |scratch, run| {
            self.run_one_into(&grid, scratch, run).clone()
        })
    }

    /// Execute the whole batch in parallel, streaming each run's views
    /// into `reducer` on the worker that produced them (see
    /// [`crate::batch::run_batch_fold_with`]). Equivalent to
    /// [`RunSpec::run_batch`] followed by a sequential fold, without ever
    /// materializing the batch. Every worker owns a single [`SimScratch`]
    /// and the reducer consumes each run's views **by reference**
    /// ([`Reducer::fold_ref`]), so the whole sweep runs on O(threads)
    /// trace-sized allocations.
    pub fn fold<R>(&self, reducer: &R) -> R::Acc
    where
        R: Reducer<RunView> + Sync,
    {
        let grid = self.hex_grid();
        batch::run_batch_fold_with(
            self.runs,
            self.threads,
            SimScratch::new,
            || reducer.empty(),
            |scratch, acc, run| {
                let rv = self.run_one_into(&grid, scratch, run);
                reducer.fold_ref(acc, run, rv);
            },
            |left, right| reducer.merge(left, right),
        )
    }

    /// Execute run 0 only (Figs. 8/9/13/14 plot one representative wave).
    pub fn run_single(&self) -> RunView {
        let grid = self.hex_grid();
        self.run_one_with(&grid, 0)
    }

    /// Execute the whole batch in parallel on the **streaming extraction
    /// path** and reduce every run's [`PulseBinner`] on the worker that
    /// produced it: the observer-backed twin of [`RunSpec::fold`]. Skew
    /// samples and stabilization estimates are accumulated online as fires
    /// happen — no run of the sweep ever materializes a trace or a
    /// [`PulseView`] — while each worker still owns a single
    /// [`SimScratch`], so the whole sweep runs on O(threads) trace-sized
    /// allocations. For the reducers in `hex_analysis::reduce` the result
    /// is byte-identical to the materialized path at any thread count
    /// (pinned by the workspace observer walls).
    pub fn fold_observed<R>(&self, reducer: &R) -> R::Acc
    where
        R: Reducer<PulseBinner> + Sync,
    {
        let grid = self.hex_grid();
        batch::run_batch_fold_with(
            self.runs,
            self.threads,
            SimScratch::new,
            || reducer.empty(),
            |scratch, acc, run| {
                let binner = self.run_one_observed_into(&grid, scratch, run);
                reducer.fold_ref(acc, run, binner);
            },
            |left, right| reducer.merge(left, right),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::assign_pulses;
    use hex_des::Time;
    use proptest::prelude::*;

    #[test]
    fn paper_defaults() {
        let s = RunSpec::paper();
        assert_eq!(s.length, 50);
        assert_eq!(s.width, 20);
        assert_eq!(s.runs, 250);
        assert_eq!(s.seed, 42);
        assert_eq!(s.pulses, 1);
        assert_eq!(s.salt(), SINGLE_PULSE_SALT);
    }

    #[test]
    fn scenario_timing_matches_table3() {
        let t = scenario_timing(Scenario::RandomDPlus);
        assert!((t.link.lo.ns() - 35.25).abs() < 0.05);
        let s = scenario_separation(Scenario::Ramp);
        assert!((s.ns() - 316.40).abs() < 0.05);
    }

    #[test]
    fn single_pulse_matches_legacy_wiring() {
        // The exact pre-RunSpec per-run wiring of the experiment drivers.
        let spec = RunSpec::small()
            .scenario(Scenario::RandomDPlus)
            .faults(FaultRegime::Byzantine(2));
        let grid = spec.hex_grid();
        for run in 0..3usize {
            let seed = spec.seed + run as u64;
            let mut rng = SimRng::seed_from_u64(seed ^ 0x5EED_0001);
            let offsets =
                Scenario::RandomDPlus.single_pulse_times(spec.width, D_MINUS, D_PLUS, &mut rng);
            let schedule = Schedule::single_pulse(offsets);
            let faults = spec.faults.plan(&grid, &mut rng);
            let cfg = SimConfig {
                timing: scenario_timing(Scenario::RandomDPlus),
                faults,
                ..SimConfig::fault_free()
            };
            let trace = simulate(grid.graph(), &schedule, &cfg, seed);
            let legacy_view = PulseView::from_single_pulse(&grid, &trace);

            let rv = spec.run_one_with(&grid, run);
            assert_eq!(rv.faulty, trace.faulty, "run {run}");
            assert_eq!(rv.view().t, legacy_view.t, "run {run}");
            assert_eq!(rv.view().cause, legacy_view.cause, "run {run}");
        }
    }

    #[test]
    fn stabilization_matches_legacy_wiring() {
        let spec = RunSpec::small()
            .scenario(Scenario::Zero)
            .pulses(4)
            .init(InitState::Arbitrary);
        let grid = spec.hex_grid();
        let separation = scenario_separation(Scenario::Zero);
        for run in 0..2usize {
            let seed = spec.seed + run as u64;
            let mut rng = SimRng::seed_from_u64(seed ^ 0x5EED_0002);
            let train = PulseTrain::new(Scenario::Zero, 4, separation);
            let schedule = train.generate(spec.width, &mut rng);
            let faults = FaultRegime::None.plan(&grid, &mut rng);
            let cfg = SimConfig {
                timing: scenario_timing(Scenario::Zero),
                faults,
                init: InitState::Arbitrary,
                ..SimConfig::fault_free()
            };
            let trace = simulate(grid.graph(), &schedule, &cfg, seed);
            let legacy = assign_pulses(
                &grid,
                &trace,
                &schedule,
                hex_core::DelayRange::paper().mid(),
            );

            let rv = spec.run_one_with(&grid, run);
            assert_eq!(rv.views.len(), legacy.len(), "run {run}");
            for (k, (got, want)) in rv.views.iter().zip(&legacy).enumerate() {
                assert_eq!(got.t, want.t, "run {run} pulse {k}");
            }
        }
    }

    #[test]
    fn batch_shapes_and_fault_counts() {
        let spec = RunSpec::small()
            .scenario(Scenario::RandomDPlus)
            .faults(FaultRegime::Byzantine(2));
        let batch = spec.run_batch();
        assert_eq!(batch.len(), spec.runs);
        for rv in &batch {
            assert_eq!(rv.faulty.len(), 2);
        }
        // Different runs place different faults (with overwhelming
        // probability across 20 runs).
        let distinct: std::collections::BTreeSet<_> =
            batch.iter().map(|rv| rv.faulty.clone()).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn mixed_regime_satisfies_condition1_over_union() {
        let spec = RunSpec::small().faults(FaultRegime::Mixed {
            byzantine: 1,
            fail_silent: 2,
        });
        let grid = spec.hex_grid();
        let mut rng = SimRng::seed_from_u64(1);
        let plan = spec.faults.plan(&grid, &mut rng);
        let faulty = plan.faulty_nodes();
        assert_eq!(faulty.len(), 3);
        assert!(satisfies_condition1(grid.graph(), &faulty));
    }

    #[test]
    fn schedule_override_wins_over_scenario() {
        let sched = Schedule::single_pulse(vec![Time::ZERO; 8]);
        let spec = RunSpec::small()
            .scenario(Scenario::Ramp)
            .schedule(sched.clone());
        let inputs = spec.materialize(0);
        assert_eq!(inputs.schedule.source(0), sched.source(0));
    }

    #[test]
    fn simulate_on_grid_graph_equals_run_one() {
        let spec = RunSpec::grid(6, 5).runs(1).threads(1);
        let grid = spec.hex_grid();
        let trace = spec.simulate_on(grid.graph(), 0);
        let rv = spec.run_single();
        let view = PulseView::from_single_pulse(&grid, &trace);
        assert_eq!(view.t, rv.view().t);
    }

    #[test]
    fn fixed_byzantine_resolves_by_coordinate() {
        let spec = RunSpec::grid(6, 5).faults(FaultRegime::FixedByzantine(2, 3));
        let grid = spec.hex_grid();
        let mut rng = SimRng::seed_from_u64(3);
        let plan = spec.faults.plan(&grid, &mut rng);
        assert_eq!(plan.faulty_nodes(), vec![grid.node(2, 3)]);
    }

    #[test]
    fn fixed_byzantine_wraps_column_like_hex_grid() {
        // Legacy behavior: the column is cylindric (modulo W).
        let grid = HexGrid::new(6, 5);
        let mut rng = SimRng::seed_from_u64(3);
        let plan = FaultRegime::FixedByzantine(2, 8).plan(&grid, &mut rng);
        assert_eq!(plan.faulty_nodes(), vec![grid.node(2, 8)]);
        assert_eq!(plan.faulty_nodes(), vec![grid.node(2, 3)]);
    }

    #[test]
    fn generous_policy_matches_fault_free_config() {
        let spec = RunSpec::grid(6, 5).timing(TimingPolicy::Generous);
        assert_eq!(spec.effective_timing(), Timing::generous());
        let inputs = spec.materialize(0);
        assert_eq!(inputs.config.timing, SimConfig::fault_free().timing);
    }

    #[test]
    fn queue_policy_threads_through_to_the_engine() {
        let base = RunSpec::grid(6, 5).runs(2).threads(1).seed(11);
        let reference = base.clone().run_batch();
        for policy in QueuePolicy::ALL {
            let spec = base.clone().queue(policy);
            assert_eq!(spec.materialize(0).config.queue, policy);
            // A pure performance knob: batch output is identical.
            assert_eq!(spec.run_batch(), reference, "{policy:?}");
        }
    }

    #[test]
    fn hex_queue_env_knob_selects_the_policy() {
        // No other test in this crate reads HEX_QUEUE, so the brief global
        // mutation cannot race a reader.
        std::env::set_var("HEX_QUEUE", "calendar");
        let spec = RunSpec::grid(4, 4).with_env();
        std::env::remove_var("HEX_QUEUE");
        assert_eq!(spec.queue, QueuePolicy::Calendar);
        assert_eq!(RunSpec::grid(4, 4).with_env().queue, QueuePolicy::default());
    }

    #[test]
    fn run_one_into_reuses_one_trace_allocation() {
        let spec = RunSpec::grid(8, 6).runs(10).scenario(Scenario::Ramp);
        let grid = spec.hex_grid();
        let mut scratch = SimScratch::new();
        for run in 0..10 {
            let reused = spec.run_one_into(&grid, &mut scratch, run).clone();
            assert_eq!(reused, spec.run_one_with(&grid, run), "run {run}");
        }
        // Ten same-shape runs share a single trace-sized allocation.
        assert_eq!(scratch.grow_count(), 1);
        // A shape change grows exactly once more, then is reused again.
        let other = RunSpec::grid(5, 4).runs(2);
        let other_grid = other.hex_grid();
        other.run_one_into(&other_grid, &mut scratch, 0);
        other.run_one_into(&other_grid, &mut scratch, 1);
        assert_eq!(scratch.grow_count(), 2);
    }

    #[test]
    fn fold_allocates_at_most_one_scratch_per_thread() {
        use crate::batch::{run_batch_fold_with, Reducer};
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Counts a cheap per-run statistic (order-sensitive enough).
        struct Fires;
        impl Reducer<RunView> for Fires {
            type Acc = Vec<usize>;
            fn empty(&self) -> Vec<usize> {
                Vec::new()
            }
            fn fold(&self, acc: &mut Vec<usize>, run: usize, rv: RunView) {
                self.fold_ref(acc, run, &rv);
            }
            fn fold_ref(&self, acc: &mut Vec<usize>, _run: usize, rv: &RunView) {
                acc.push(rv.views.iter().map(|v| v.spurious).sum::<usize>() + rv.faulty.len());
            }
            fn merge(&self, mut left: Vec<usize>, right: Vec<usize>) -> Vec<usize> {
                left.extend(right);
                left
            }
        }

        /// Reports the scratch's grow count into a shared tally when the
        /// worker drops it at scope exit.
        struct Tallied<'a> {
            scratch: SimScratch,
            grows: &'a AtomicUsize,
        }
        impl Drop for Tallied<'_> {
            fn drop(&mut self) {
                self.grows
                    .fetch_add(self.scratch.grow_count(), Ordering::Relaxed);
            }
        }

        // The acceptance bound of the scratch redesign: a whole fold
        // performs O(threads) scratch constructions, each growing its
        // trace-sized buffers exactly once — not O(runs). The factory is
        // instrumented locally (no global counter), with the same wiring
        // `RunSpec::fold` uses; the accumulator is pinned against the
        // public path to keep the two in lockstep.
        for threads in [1usize, 3] {
            let spec = RunSpec::grid(6, 5).runs(40).threads(threads).seed(9);
            let grid = spec.hex_grid();
            let created = AtomicUsize::new(0);
            let grows = AtomicUsize::new(0);
            let acc = run_batch_fold_with(
                spec.runs,
                spec.threads,
                || {
                    created.fetch_add(1, Ordering::Relaxed);
                    Tallied {
                        scratch: SimScratch::new(),
                        grows: &grows,
                    }
                },
                || Fires.empty(),
                |tallied, acc, run| {
                    let rv = spec.run_one_into(&grid, &mut tallied.scratch, run);
                    Fires.fold_ref(acc, run, rv);
                },
                |left, right| Fires.merge(left, right),
            );
            assert_eq!(acc.len(), 40);
            assert_eq!(acc, spec.fold(&Fires), "threads = {threads}");
            let created = created.load(Ordering::Relaxed);
            assert!(
                created <= threads,
                "{created} scratches for {threads} threads / 40 runs"
            );
            // Each scratch allocates its trace buffers at most once (a
            // worker that never wins a chunk never grows its scratch).
            let grows = grows.load(Ordering::Relaxed);
            assert!(
                (1..=created).contains(&grows),
                "{grows} trace-buffer allocations from {created} scratches"
            );
        }
    }

    proptest! {
        // Shared CI case budget: pin 32 cases (= compat/proptest DEFAULT_CASES).
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Randomized RunSpecs (grid shape, fault regime, init, pulse
        /// count, seed) driven through ONE shared, dirty scratch for
        /// several consecutive runs: every run equals its
        /// fresh-allocation twin, field for field.
        #[test]
        fn prop_shared_scratch_equals_fresh_twin(
            length in 4u32..8,
            width in 6u32..9,
            regime in 0usize..4,
            pulses in 1usize..3,
            arbitrary_init in 0usize..2,
            seed in 0u64..1_000_000,
        ) {
            let faults = match regime {
                0 => FaultRegime::None,
                1 => FaultRegime::Byzantine(1),
                2 => FaultRegime::FailSilent(1),
                _ => FaultRegime::Mixed { byzantine: 1, fail_silent: 1 },
            };
            let init = if arbitrary_init == 0 {
                InitState::Clean
            } else {
                InitState::Arbitrary
            };
            let spec = RunSpec::grid(length, width)
                .runs(3)
                .seed(seed)
                .scenario(Scenario::RandomDPlus)
                .faults(faults)
                .init(init)
                .pulses(pulses);
            let grid = spec.hex_grid();

            // Dirty the scratch with an unrelated shape and regime first,
            // so reuse never starts from a conveniently fresh state.
            let mut scratch = SimScratch::new();
            let decoy = RunSpec::grid(3, 4).runs(1).seed(seed ^ 0xDEC0);
            decoy.run_one_into(&decoy.hex_grid(), &mut scratch, 0);

            for run in 0..spec.runs {
                let fresh = spec.run_one_with(&grid, run);
                let reused = spec.run_one_into(&grid, &mut scratch, run);
                prop_assert_eq!(reused, &fresh, "run {} diverged under reuse", run);
            }
        }

        /// The observed-fold wall for the batched kernels: for randomized
        /// specs, every run's streamed [`PulseBinner`] — the exact state
        /// [`RunSpec::fold_observed`] reduces — is identical whether the
        /// engine dispatches one event at a time or in bucket batches,
        /// across all three queue policies, each side on its own dirty
        /// reused scratch.
        #[test]
        fn prop_batched_observed_runs_equal_scalar(
            length in 4u32..8,
            width in 6u32..9,
            regime in 0usize..4,
            pulses in 1usize..3,
            arbitrary_init in 0usize..2,
            seed in 0u64..1_000_000,
        ) {
            let faults = match regime {
                0 => FaultRegime::None,
                1 => FaultRegime::Byzantine(1),
                2 => FaultRegime::FailSilent(1),
                _ => FaultRegime::Mixed { byzantine: 1, fail_silent: 1 },
            };
            let init = if arbitrary_init == 0 {
                InitState::Clean
            } else {
                InitState::Arbitrary
            };
            let spec = RunSpec::grid(length, width)
                .runs(2)
                .seed(seed)
                .scenario(Scenario::RandomDPlus)
                .faults(faults)
                .init(init)
                .pulses(pulses);
            let grid = spec.hex_grid();
            let d_mid = spec.delays.envelope().mid();
            let mut scalar_scratch = SimScratch::new();
            let mut batched_scratch = SimScratch::new();
            for run in 0..spec.runs {
                let inputs = spec.materialize(run);
                for policy in QueuePolicy::ALL {
                    let scalar_cfg = SimConfig {
                        queue: policy,
                        batch: false,
                        ..inputs.config.clone()
                    };
                    let batched_cfg = SimConfig {
                        batch: true,
                        ..scalar_cfg.clone()
                    };
                    let s = simulate_observed_into(
                        &mut scalar_scratch, &grid, &inputs.schedule,
                        &scalar_cfg, inputs.seed, d_mid,
                    );
                    let (slots, spurious) = (s.slots().to_vec(), s.spurious());
                    let b = simulate_observed_into(
                        &mut batched_scratch, &grid, &inputs.schedule,
                        &batched_cfg, inputs.seed, d_mid,
                    );
                    prop_assert_eq!(
                        b.slots(), &slots[..],
                        "run {} under {:?}: batched binner diverged", run, policy
                    );
                    prop_assert_eq!(b.spurious(), spurious);
                }
            }
        }
    }
}
