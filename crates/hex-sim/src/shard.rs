//! Tile-sharded intra-run parallelism: one simulation run spread across
//! cores, byte-identical to the serial engine.
//!
//! ## Scheme
//!
//! The hex grid is partitioned into **column tiles** ([`TileMap`]): each
//! tile owns a contiguous band of columns, a full event queue of the
//! run's [`QueuePolicy`](crate::QueuePolicy), and a copy of the SoA node
//! state. Tiles advance in **lockstep time windows** sized from the
//! delivery-envelope lower bound ([`SimConfig::min_increment`]) — the
//! conservative-parallel-DES lookahead: every event the engine schedules
//! in-loop lands at least `min_increment` after the instant that
//! scheduled it, so no event processed inside a window
//! `[T0, T0 + min_increment)` can schedule back into that window, and
//! each tile may drain its own slice of the window with no peeking at
//! its neighbours.
//!
//! ## Determinism
//!
//! Outputs must be byte-identical to the serial engine at any shard
//! count (the knob is not canonically encoded, so the `hexcanon/2` hash
//! and the hexd cache never see it). Two mechanisms carry that
//! contract:
//!
//! 1. **Global ranks.** Every scheduled event carries a `grank`,
//!    assigned at push time by the single coordinator thread in exactly
//!    the order the serial engine would have pushed. Tile queues
//!    therefore break time ties FIFO-by-grank, and merging the tiles'
//!    per-window streams by `(time, grank)` reproduces the serial pop
//!    order *exactly*, independent of thread interleaving.
//! 2. **Deferred side effects.** Workers only run the node state
//!    machines (flag set/expire, sleep/wake, guard checks) and record an
//!    op log; every RNG draw, observer record and event push is replayed
//!    by the coordinator in merged `(time, grank)` order against the
//!    single per-run RNG stream. The draw sequence — and with it every
//!    delivery time, timeout and trace byte — is the serial engine's.
//!
//! At each window barrier the tiles exchange only boundary-crossing
//! events, through per-tile mailboxes drained in grank (= serial push)
//! order. Scripted fault transitions are **script instants**: the era of
//! parallel windows ends, the coordinator gathers tile-owned node state
//! into the master copy, replays everything scheduled at the transition
//! instant serially through the shared serial handlers
//! ([`handle_one`]/[`apply_transition`]), and scatters the updated state
//! (and hoisted fault masks) back out before the next era.

use std::sync::mpsc::{Receiver, Sender};
use std::thread;

use hex_core::delay::ResolvedDelays;
use hex_core::{LinkBehavior, NodeId, PulseGraph, TriggerCause};
use hex_des::{Duration, EventQueue, FutureEventList, Schedule, SimRng, Time};

use crate::engine::{
    apply_transition, handle_one, seed_events, Ev, EvSink, RunCtx, RunSetup, SimConfig, Step,
};
use crate::observe::RunObserver;
use crate::soa::SoaNodes;
use crate::trace::Arrival;

/// The column partition of a [`PulseGraph`] into `tiles` shards.
///
/// Columns (the `col` of [`coord`](PulseGraph::coord)) are split into
/// contiguous, balanced bands; a graph without coordinates (no hex
/// embedding) falls back to contiguous node-id ranges. Only link
/// *endpoints* matter for routing — an event is owned by the tile of the
/// node it targets — so any partition is correct; columns are chosen
/// because hex links connect adjacent layers at nearby columns, which
/// keeps the boundary-crossing share small.
#[derive(Debug, Clone, Default)]
pub struct TileMap {
    tile_of: Vec<u32>,
    tiles: usize,
    boundary_links: usize,
}

impl TileMap {
    /// Partition `graph` into at most `shards` column tiles. The
    /// effective tile count is clamped to the number of columns (or
    /// nodes, without coordinates); every tile is non-empty.
    pub fn columns(graph: &PulseGraph, shards: usize) -> TileMap {
        let n = graph.node_count();
        let shards = shards.max(1);
        let cols = graph
            .node_ids()
            .map(|id| graph.coord(id).map(|c| c.col as usize + 1))
            .collect::<Option<Vec<_>>>()
            .and_then(|c| c.iter().copied().max());
        let mut tile_of = vec![0u32; n];
        let tiles = match cols {
            Some(cols) => {
                let tiles = shards.min(cols);
                for id in graph.node_ids() {
                    let col = graph.coord(id).expect("checked above").col as usize;
                    tile_of[id as usize] = (col * tiles / cols) as u32;
                }
                tiles
            }
            None => {
                let tiles = shards.min(n.max(1));
                for (i, t) in tile_of.iter_mut().enumerate() {
                    *t = (i * tiles / n) as u32;
                }
                tiles
            }
        };
        let boundary_links = (0..graph.link_count() as u32)
            .filter(|&l| {
                let lk = graph.link(l);
                tile_of[lk.src as usize] != tile_of[lk.dst as usize]
            })
            .count();
        TileMap {
            tile_of,
            tiles,
            boundary_links,
        }
    }

    /// Number of tiles in the partition.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// The tile owning `node`.
    pub fn tile_of(&self, node: NodeId) -> usize {
        self.tile_of[node as usize] as usize
    }

    /// How many links cross a tile boundary — the events that must pass
    /// through a barrier mailbox instead of staying tile-local.
    pub fn boundary_links(&self) -> usize {
        self.boundary_links
    }
}

/// A scheduled event in flight between the coordinator and a tile:
/// `(time, grank, event)`.
type Push = (Time, u64, Ev);

/// A scripted-fault sentinel, held by the coordinator (never enqueued on
/// a tile): popping past it ends the current era.
#[derive(Debug, Clone, Copy)]
struct Sentinel {
    at: Time,
    grank: u64,
    index: u32,
}

/// One entry of a script-instant work list, ordered by grank.
#[derive(Debug, Clone, Copy)]
enum Item {
    Ev(Ev),
    Sentinel(u32),
}

/// One deferred side effect of a tile-processed event, replayed by the
/// coordinator in merged `(time, grank)` order.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// An observer record (`obs.on_fire`).
    Fire { node: NodeId, cause: TriggerCause },
    /// A provenance record (`cfg.record_arrivals` only).
    Arrival {
        node: NodeId,
        from: NodeId,
        port: u8,
    },
    /// An RNG draw plus the push it times: replays as
    /// `push(at + rng.duration_in(lo, hi), ev)`. Table delays record
    /// `lo == hi`, which [`SimRng::duration_in`] returns without
    /// consuming the stream — exactly like the serial `Table` arm.
    Draw { ev: Ev, lo: Duration, hi: Duration },
}

/// One processed event's slice of the op log: ops `[start, end)` happened
/// while handling the event popped at `(at, grank)`. Events whose
/// handling had no side effects (inactive target, duplicate flag) record
/// nothing.
#[derive(Debug, Clone, Copy)]
struct EvRec {
    at: Time,
    grank: u64,
    start: u32,
    end: u32,
}

/// The per-tile future event list over `(grank, Ev)` payloads — always
/// the binary heap, *regardless* of [`QueuePolicy`](crate::QueuePolicy).
/// The policy is a pure
/// performance knob (every policy pops the identical `(time, seq)` order,
/// pinned by the determinism walls), so the tile queue kind cannot affect
/// output; and the lockstep access pattern — drain everything up to a cap,
/// then peek the next head, once per window — is exactly where a heap wins:
/// O(1) peek and no bucket walks. The calendar ring, the serial winner,
/// re-scans its current bucket on every capped drain and walks empty
/// buckets on every peek, which measured 3–13× worse here across tile
/// geometries. The *master* run still honors `HEX_QUEUE` whenever
/// `shards == 1`.
type TileQueue = EventQueue<(u64, Ev)>;

/// One tile: its event queue, its copy of the node state (full-size, so
/// events address nodes by global id; only owned nodes are ever touched
/// between script instants), and its recycled drain buffer.
#[derive(Debug)]
struct Tile {
    nodes: SoaNodes,
    queue: TileQueue,
    batch: Vec<(Time, (u64, Ev))>,
}

/// Reusable working memory of the sharded engine, embedded in
/// [`SimScratch`](crate::SimScratch): the tile map, the tiles, the
/// barrier mailboxes and the coordinator's merge/instant scratch.
/// Recycled across runs like every other scratch arena; empty (and
/// allocation-free) until the first `cfg.shards > 1` run.
#[derive(Debug, Default)]
pub(crate) struct ShardScratch {
    map: TileMap,
    tiles: Vec<Tile>,
    /// Per-tile mailbox: events routed to the tile, delivered into its
    /// queue at the next barrier, in grank order.
    pending: Vec<Vec<Push>>,
    /// Recycled per-tile op-log buffers (ping-ponged with the workers).
    spare_evs: Vec<Vec<EvRec>>,
    spare_ops: Vec<Vec<Op>>,
    sentinels: Vec<Sentinel>,
    /// Script-instant work list, sorted by grank.
    items: Vec<(u64, Item)>,
    /// K-way merge cursors.
    merge_idx: Vec<usize>,
}

impl ShardScratch {
    pub(crate) fn new() -> Self {
        ShardScratch::default()
    }

    /// Size everything for `graph` under `cfg`, recycling tiles whose
    /// shape (and queue geometry) carries over.
    fn prepare(&mut self, graph: &PulseGraph, cfg: &SimConfig) {
        self.map = TileMap::columns(graph, cfg.shards);
        let tiles = self.map.tiles();
        let mut owned = vec![0usize; tiles];
        for id in graph.node_ids() {
            owned[self.map.tile_of(id)] += 1;
        }
        self.tiles.truncate(tiles);
        while self.tiles.len() < tiles {
            self.tiles.push(Tile {
                nodes: SoaNodes::new(),
                queue: EventQueue::new(),
                batch: Vec::new(),
            });
        }
        for (tile, &n) in self.tiles.iter_mut().zip(owned.iter()) {
            // The node copy is refreshed from the seeded master below;
            // only the shape needs to be right here.
            if !tile.nodes.matches(graph) {
                tile.nodes.rebuild(graph);
            }
            tile.queue.clear();
            tile.queue.reserve(n);
        }
        self.pending.resize_with(tiles, Vec::new);
        self.spare_evs.resize_with(tiles, Vec::new);
        self.spare_ops.resize_with(tiles, Vec::new);
        for buf in &mut self.pending {
            buf.clear();
        }
        self.sentinels.clear();
        self.items.clear();
    }
}

/// The tile an event is owned by: the tile of the node whose state it
/// touches (a delivery belongs to its *receiver*).
fn target_tile(map: &TileMap, graph: &PulseGraph, ev: Ev) -> usize {
    match ev {
        Ev::SourceFire { node } | Ev::LinkTimeout { node, .. } | Ev::Wake { node, .. } => {
            map.tile_of(node)
        }
        Ev::Deliver { link } => map.tile_of(graph.link(link).dst),
        Ev::Script { .. } => unreachable!("sentinels are intercepted before routing"),
    }
}

/// The seeding sink: assigns granks in push order (so tile-queue FIFO
/// sequence numbers agree with the serial queue's), intercepts script
/// sentinels into the coordinator's list, and routes everything else to
/// the owning tile's mailbox.
struct SeedRouter<'a> {
    graph: &'a PulseGraph,
    map: &'a TileMap,
    pending: &'a mut [Vec<Push>],
    sentinels: &'a mut Vec<Sentinel>,
    counter: &'a mut u64,
}

impl EvSink for SeedRouter<'_> {
    fn push(&mut self, t: Time, ev: Ev) {
        let grank = *self.counter;
        *self.counter += 1;
        if let Ev::Script { index } = ev {
            self.sentinels.push(Sentinel {
                at: t,
                grank,
                index,
            });
        } else {
            self.pending[target_tile(self.map, self.graph, ev)].push((t, grank, ev));
        }
    }
}

/// The script-instant sink: pushes at the instant itself are appended to
/// the in-flight work list (their fresh granks exceed every queued
/// item's, so the list stays grank-sorted), later ones go straight into
/// the owning tile's queue.
struct InstantSink<'a> {
    now: Time,
    graph: &'a PulseGraph,
    map: &'a TileMap,
    tiles: &'a mut [Tile],
    items: &'a mut Vec<(u64, Item)>,
    counter: &'a mut u64,
}

impl EvSink for InstantSink<'_> {
    fn push(&mut self, t: Time, ev: Ev) {
        let grank = *self.counter;
        *self.counter += 1;
        if t == self.now {
            self.items.push((grank, Item::Ev(ev)));
        } else {
            self.tiles[target_tile(self.map, self.graph, ev)]
                .queue
                .push(t, (grank, ev));
        }
    }
}

/// Everything a tile worker reads, shared immutably for one era (fault
/// masks and behaviours only change at script instants, which sit
/// between eras).
struct TileEnv<'a> {
    graph: &'a PulseGraph,
    cfg: &'a SimConfig,
    behaviors: &'a [LinkBehavior],
    delays: &'a ResolvedDelays,
    active: &'a [bool],
    faulty: &'a [bool],
    all_links_correct: bool,
}

/// One lockstep window's input to a tile worker. The buffers ping-pong:
/// the worker fills `evs`/`ops` and returns them (plus the emptied
/// mailbox) in its [`WindowOut`].
struct WindowIn {
    cap: Time,
    pushes: Vec<Push>,
    evs: Vec<EvRec>,
    ops: Vec<Op>,
}

/// One window's result from a tile worker.
struct WindowOut {
    head: Option<Time>,
    stale: u64,
    popped: u64,
    pushes: Vec<Push>,
    evs: Vec<EvRec>,
    ops: Vec<Op>,
}

/// Per-link delay bounds for a deferred draw: per-message envelopes
/// replay as a real draw, resolved tables as the degenerate `lo == hi`
/// interval (no stream consumption — the serial `Table` arm's exact
/// behaviour).
fn delay_bounds(delays: &ResolvedDelays, link: u32) -> (Duration, Duration) {
    match delays {
        ResolvedDelays::PerMessage(r) => (r.lo, r.hi),
        ResolvedDelays::Table(t) => {
            let d = t[link as usize];
            (d, d)
        }
    }
}

/// Deferred mirror of the serial `broadcast`: one draw per correct
/// outgoing link, in link order.
fn defer_broadcast(node: NodeId, env: &TileEnv<'_>, ops: &mut Vec<Op>) {
    for &l in env.graph.out_links(node) {
        if env.all_links_correct || env.behaviors[l as usize] == LinkBehavior::Correct {
            let (lo, hi) = delay_bounds(env.delays, l);
            ops.push(Op::Draw {
                ev: Ev::Deliver { link: l },
                lo,
                hi,
            });
        }
    }
}

/// Deferred mirror of the serial `maybe_fire`: run the firing state
/// machine now, defer the observer record and both draw families.
fn defer_maybe_fire(node: NodeId, env: &TileEnv<'_>, nodes: &mut SoaNodes, ops: &mut Vec<Op>) {
    if nodes.is_sleeping(node) {
        return;
    }
    let Some(ix) = nodes.satisfied_guard(node, env.graph.guard(node)) else {
        return;
    };
    ops.push(Op::Fire {
        node,
        cause: TriggerCause::from_guard_index(ix),
    });
    let sleep_epoch = nodes.fire(node);
    ops.push(Op::Draw {
        ev: Ev::Wake {
            node,
            epoch: sleep_epoch,
        },
        lo: env.cfg.timing.sleep.lo,
        hi: env.cfg.timing.sleep.hi,
    });
    defer_broadcast(node, env, ops);
}

/// Deferred mirror of the serial `refresh_stuck_one`.
fn defer_refresh_stuck_one(
    node: NodeId,
    port: u8,
    env: &TileEnv<'_>,
    nodes: &mut SoaNodes,
    ops: &mut Vec<Op>,
) {
    if env.all_links_correct {
        return;
    }
    let l = env.graph.in_links(node)[port as usize];
    if env.behaviors[l as usize] != LinkBehavior::StuckOne {
        return;
    }
    if let Some(epoch) = nodes.set_flag(node, port) {
        ops.push(Op::Draw {
            ev: Ev::LinkTimeout { node, port, epoch },
            lo: env.cfg.timing.link.lo,
            hi: env.cfg.timing.link.hi,
        });
    }
}

/// Process one popped event against the tile's node state, recording the
/// deferred side effects. Mirrors the serial `handle_one` arm bodies
/// (with the dynamic currently-faulty guard always on — harmless in
/// unscripted runs, where an inactive node never owns a timer). Returns
/// 1 for a stale epoch-rejected pop.
fn process_one(
    now: Time,
    grank: u64,
    ev: Ev,
    nodes: &mut SoaNodes,
    env: &TileEnv<'_>,
    evs: &mut Vec<EvRec>,
    ops: &mut Vec<Op>,
) -> u64 {
    let _ = now;
    let start = ops.len() as u32;
    let mut stale = 0u64;
    match ev {
        Ev::SourceFire { node } => {
            if !env.faulty[node as usize] {
                ops.push(Op::Fire {
                    node,
                    cause: TriggerCause::Source,
                });
                defer_broadcast(node, env, ops);
            }
        }
        Ev::Deliver { link } => {
            let l = env.graph.link(link);
            let n = l.dst;
            if env.active[n as usize] {
                if let Some(epoch) = nodes.set_flag(n, l.dst_port) {
                    if env.cfg.record_arrivals {
                        ops.push(Op::Arrival {
                            node: n,
                            from: l.src,
                            port: l.dst_port,
                        });
                    }
                    ops.push(Op::Draw {
                        ev: Ev::LinkTimeout {
                            node: n,
                            port: l.dst_port,
                            epoch,
                        },
                        lo: env.cfg.timing.link.lo,
                        hi: env.cfg.timing.link.hi,
                    });
                    defer_maybe_fire(n, env, nodes, ops);
                }
            }
        }
        Ev::LinkTimeout { node, port, epoch } => {
            debug_assert!(
                epoch <= nodes.flag_epoch(node, port),
                "LinkTimeout from the future: node {node} port {port} \
                 carries epoch {epoch} > current {}",
                nodes.flag_epoch(node, port)
            );
            if !env.active[node as usize] {
                stale = 1;
            } else if nodes.expire_flag(node, port, epoch) {
                defer_refresh_stuck_one(node, port, env, nodes, ops);
                defer_maybe_fire(node, env, nodes, ops);
            } else {
                stale = 1;
            }
        }
        Ev::Wake { node, epoch } => {
            debug_assert!(
                epoch <= nodes.sleep_epoch(node),
                "Wake from the future: node {node} carries epoch {epoch} > current {}",
                nodes.sleep_epoch(node)
            );
            if !env.active[node as usize] {
                stale = 1;
            } else if nodes.wake(node, epoch) {
                for port in 0..env.graph.port_count(node) as u8 {
                    defer_refresh_stuck_one(node, port, env, nodes, ops);
                }
                defer_maybe_fire(node, env, nodes, ops);
            } else {
                stale = 1;
            }
        }
        Ev::Script { .. } => unreachable!("script sentinels never enter tile queues"),
    }
    let end = ops.len() as u32;
    if end > start {
        evs.push(EvRec {
            at: now,
            grank,
            start,
            end,
        });
    }
    stale
}

/// One tile's share of one lockstep window: absorb the mailbox, drain
/// the queue up to the cap, run the state machines, return the op log
/// and the new queue head. Called from a worker thread per tile, or
/// inline on the coordinator when the host has no parallelism to offer —
/// identical either way.
fn process_tile_window(tile: &mut Tile, env: &TileEnv<'_>, win: WindowIn) -> WindowOut {
    let span = env.cfg.min_increment();
    let WindowIn {
        cap,
        mut pushes,
        mut evs,
        mut ops,
    } = win;
    for &(t, grank, ev) in &pushes {
        tile.queue.push(t, (grank, ev));
    }
    pushes.clear();
    evs.clear();
    ops.clear();
    let mut stale = 0u64;
    let mut popped = 0u64;
    // Everything in the window fits one span-bounded batch (the cap
    // sits within the lookahead of the window's first event); the
    // loop guards the degenerate zero-lookahead configuration.
    while tile.queue.pop_batch(span, cap, &mut tile.batch) > 0 {
        popped += tile.batch.len() as u64;
        for i in 0..tile.batch.len() {
            let (now, (grank, ev)) = tile.batch[i];
            stale += process_one(now, grank, ev, &mut tile.nodes, env, &mut evs, &mut ops);
        }
    }
    let head = tile.queue.peek_time();
    WindowOut {
        head,
        stale,
        popped,
        pushes,
        evs,
        ops,
    }
}

/// A tile worker's era loop: one [`process_tile_window`] per received
/// window. Exits when the coordinator hangs up.
fn tile_worker(tile: &mut Tile, env: &TileEnv<'_>, rx: Receiver<WindowIn>, tx: Sender<WindowOut>) {
    while let Ok(win) = rx.recv() {
        if tx.send(process_tile_window(tile, env, win)).is_err() {
            return;
        }
    }
}

/// Route one replayed push to its owning tile's mailbox, assigning the
/// next grank.
fn route_push(
    t: Time,
    ev: Ev,
    map: &TileMap,
    graph: &PulseGraph,
    pending: &mut [Vec<Push>],
    counter: &mut u64,
) {
    let grank = *counter;
    *counter += 1;
    pending[target_tile(map, graph, ev)].push((t, grank, ev));
}

/// Merge the tiles' window op logs by `(time, grank)` — the serial pop
/// order — and replay them against the real RNG, observer and arrival
/// log. Draw replays route their pushes into the mailboxes with fresh
/// granks (again: serial push order).
#[allow(clippy::too_many_arguments)]
fn merge_replay<O: RunObserver>(
    outs: &[WindowOut],
    map: &TileMap,
    graph: &PulseGraph,
    pending: &mut [Vec<Push>],
    counter: &mut u64,
    rng: &mut SimRng,
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    idx: &mut Vec<usize>,
) {
    idx.clear();
    idx.resize(outs.len(), 0);
    loop {
        // Linear min-scan over the tile cursors (k is the shard count;
        // a heap would not pay for itself and keys are unique anyway).
        let mut best: Option<(Time, u64, usize)> = None;
        for (t, out) in outs.iter().enumerate() {
            if let Some(rec) = out.evs.get(idx[t]) {
                if best.map_or(true, |(bt, bg, _)| (rec.at, rec.grank) < (bt, bg)) {
                    best = Some((rec.at, rec.grank, t));
                }
            }
        }
        let Some((_, _, t)) = best else {
            break;
        };
        let rec = outs[t].evs[idx[t]];
        idx[t] += 1;
        for op in &outs[t].ops[rec.start as usize..rec.end as usize] {
            match *op {
                Op::Fire { node, cause } => obs.on_fire(node, rec.at, cause),
                Op::Arrival { node, from, port } => {
                    arrivals[node as usize].push(Arrival {
                        at: rec.at,
                        from,
                        port,
                    });
                }
                Op::Draw { ev, lo, hi } => {
                    let d = rng.duration_in(lo, hi);
                    route_push(rec.at + d, ev, map, graph, pending, counter);
                }
            }
        }
    }
}

/// The cap of a lockstep window starting at `t0`: one picosecond short
/// of the lookahead (`t0 + span - 1`), clamped to the era limit; a
/// degenerate zero lookahead still advances one instant at a time.
fn window_cap(t0: Time, span: Duration, limit: Time) -> Time {
    let end = Time::from_ps(t0.ps().saturating_add(span.ps()).saturating_sub(1));
    end.max(t0).min(limit)
}

/// Deliver every mailbox into its tile's queue (between eras, when the
/// coordinator owns the tiles).
fn deliver_pending(shard: &mut ShardScratch) {
    for (tile, buf) in shard.tiles.iter_mut().zip(shard.pending.iter_mut()) {
        for &(t, grank, ev) in buf.iter() {
            tile.queue.push(t, (grank, ev));
        }
        buf.clear();
    }
}

/// Everything the coordinator does at a window barrier: reclaim the
/// ping-ponged buffers, merge + replay the op logs (which refills the
/// mailboxes), and compute the next window's start. Shared verbatim by
/// the threaded and inline era drivers, so dispatch cannot drift.
#[allow(clippy::too_many_arguments)]
fn after_window<O: RunObserver>(
    outs: &mut [WindowOut],
    map: &TileMap,
    graph: &PulseGraph,
    pending: &mut [Vec<Push>],
    spare_evs: &mut [Vec<EvRec>],
    spare_ops: &mut [Vec<Op>],
    merge_idx: &mut Vec<usize>,
    counter: &mut u64,
    rng: &mut SimRng,
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    popped: &mut u64,
    stale: &mut u64,
) -> Option<Time> {
    // Hand the emptied mailboxes back before the replay refills them
    // with the window's deferred pushes.
    for (i, out) in outs.iter_mut().enumerate() {
        *popped += out.popped;
        *stale += out.stale;
        pending[i] = std::mem::take(&mut out.pushes);
    }
    merge_replay(
        outs, map, graph, pending, counter, rng, obs, arrivals, merge_idx,
    );
    let mut next: Option<Time> = None;
    for (i, out) in outs.iter_mut().enumerate() {
        if let Some(h) = out.head {
            next = Some(next.map_or(h, |x| x.min(h)));
        }
        let mut evs = std::mem::take(&mut out.evs);
        evs.clear();
        spare_evs[i] = evs;
        let mut ops = std::mem::take(&mut out.ops);
        ops.clear();
        spare_ops[i] = ops;
    }
    for buf in pending.iter() {
        for &(t, _, _) in buf {
            next = Some(next.map_or(t, |x| x.min(t)));
        }
    }
    next
}

/// Run one era of lockstep windows — from the first pending event up to
/// `era_limit` (the horizon, or one picosecond short of the next script
/// instant) — with one worker thread per tile, or inline on this thread
/// when there is only one tile or the host has a single core (where
/// per-window channel hand-offs would cost scheduler round-trips and
/// buy nothing). Both drivers run the same window/merge code, so the
/// output is byte-identical either way. Returns `(popped, stale)`.
#[allow(clippy::too_many_arguments)]
fn run_era<O: RunObserver>(
    first: Time,
    era_limit: Time,
    setup: &mut RunSetup,
    graph: &PulseGraph,
    cfg: &SimConfig,
    shard: &mut ShardScratch,
    active: &[bool],
    faulty: &[bool],
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    counter: &mut u64,
) -> (u64, u64) {
    let ShardScratch {
        map,
        tiles,
        pending,
        spare_evs,
        spare_ops,
        merge_idx,
        ..
    } = shard;
    let env = TileEnv {
        graph,
        cfg,
        behaviors: &setup.behaviors,
        delays: &setup.delays,
        active,
        faulty,
        all_links_correct: setup.behaviors.iter().all(|&b| b == LinkBehavior::Correct),
    };
    let rng = &mut setup.rng;
    let span = cfg.min_increment();
    let tile_count = tiles.len();
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    let mut popped = 0u64;
    let mut stale = 0u64;
    let mut outs: Vec<WindowOut> = Vec::with_capacity(tile_count);

    if tile_count == 1 || cores == 1 {
        let mut t0 = first;
        loop {
            let cap = window_cap(t0, span, era_limit);
            outs.clear();
            for (i, tile) in tiles.iter_mut().enumerate() {
                let win = WindowIn {
                    cap,
                    pushes: std::mem::take(&mut pending[i]),
                    evs: std::mem::take(&mut spare_evs[i]),
                    ops: std::mem::take(&mut spare_ops[i]),
                };
                outs.push(process_tile_window(tile, &env, win));
            }
            let next = after_window(
                &mut outs,
                map,
                graph,
                pending,
                spare_evs,
                spare_ops,
                merge_idx,
                counter,
                rng,
                obs,
                arrivals,
                &mut popped,
                &mut stale,
            );
            match next {
                Some(t) if t <= era_limit => t0 = t,
                _ => break,
            }
        }
        return (popped, stale);
    }

    thread::scope(|scope| {
        let env = &env;
        let mut chans = Vec::with_capacity(tile_count);
        for tile in tiles.iter_mut() {
            let (in_tx, in_rx) = std::sync::mpsc::channel::<WindowIn>();
            let (out_tx, out_rx) = std::sync::mpsc::channel::<WindowOut>();
            scope.spawn(move || tile_worker(tile, env, in_rx, out_tx));
            chans.push((in_tx, out_rx));
        }
        let mut t0 = first;
        loop {
            let cap = window_cap(t0, span, era_limit);
            for (i, (in_tx, _)) in chans.iter().enumerate() {
                let win = WindowIn {
                    cap,
                    pushes: std::mem::take(&mut pending[i]),
                    evs: std::mem::take(&mut spare_evs[i]),
                    ops: std::mem::take(&mut spare_ops[i]),
                };
                in_tx.send(win).expect("tile worker alive");
            }
            outs.clear();
            for (_, out_rx) in &chans {
                outs.push(out_rx.recv().expect("tile worker alive"));
            }
            let next = after_window(
                &mut outs,
                map,
                graph,
                pending,
                spare_evs,
                spare_ops,
                merge_idx,
                counter,
                rng,
                obs,
                arrivals,
                &mut popped,
                &mut stale,
            );
            match next {
                Some(t) if t <= era_limit => t0 = t,
                _ => break,
            }
        }
        // Dropping the senders hangs the workers up; the scope joins.
    });
    (popped, stale)
}

/// Serially replay a script instant at `s`: gather the tile-owned node
/// state into the master copy, pop everything scheduled at `s` (plus the
/// due sentinels) into one grank-ordered list, and run it through the
/// shared serial handlers — transitions applied exactly where their
/// sentinel sits in the order, with all randomness from the usual
/// streams. Returns `(popped, stale, sentinels consumed)`.
#[allow(clippy::too_many_arguments)]
fn run_instant<O: RunObserver>(
    s: Time,
    next_sent: usize,
    setup: &mut RunSetup,
    graph: &PulseGraph,
    cfg: &SimConfig,
    shard: &mut ShardScratch,
    master: &mut SoaNodes,
    active: &mut [bool],
    faulty: &mut [bool],
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    counter: &mut u64,
) -> (u64, u64, usize) {
    let script = cfg.script.as_ref().expect("instants imply a script");
    let ShardScratch {
        map,
        tiles,
        sentinels,
        items,
        ..
    } = shard;
    for n in graph.node_ids() {
        master.copy_node_from(&tiles[map.tile_of(n)].nodes, n);
    }
    items.clear();
    let mut popped = 0u64;
    for tile in tiles.iter_mut() {
        while tile.queue.peek_time() == Some(s) {
            let (_, (grank, ev)) = tile.queue.pop_next().expect("peeked event pops");
            items.push((grank, Item::Ev(ev)));
            popped += 1;
        }
    }
    let mut used = 0usize;
    while let Some(sen) = sentinels.get(next_sent + used) {
        if sen.at != s {
            break;
        }
        items.push((sen.grank, Item::Sentinel(sen.index)));
        used += 1;
        popped += 1;
    }
    items.sort_unstable_by_key(|&(grank, _)| grank);
    let mut stale = 0u64;
    let mut i = 0;
    while i < items.len() {
        let (_, item) = items[i];
        i += 1;
        match item {
            Item::Ev(ev) => {
                let ctx = RunCtx {
                    graph,
                    cfg,
                    behaviors: &setup.behaviors,
                    delays: &setup.delays,
                    active,
                    faulty,
                    all_links_correct: setup.behaviors.iter().all(|&b| b == LinkBehavior::Correct),
                    horizon: setup.horizon,
                };
                let mut sink = InstantSink {
                    now: s,
                    graph,
                    map,
                    tiles,
                    items,
                    counter,
                };
                match handle_one::<_, O, true>(
                    s,
                    ev,
                    &ctx,
                    master,
                    obs,
                    arrivals,
                    &mut sink,
                    &mut setup.rng,
                ) {
                    Step::Done => {}
                    Step::Stale => stale += 1,
                    Step::Script(_) => unreachable!("sentinels never enter tile queues"),
                }
            }
            Item::Sentinel(index) => {
                let mut sink = InstantSink {
                    now: s,
                    graph,
                    map,
                    tiles,
                    items,
                    counter,
                };
                apply_transition(
                    &mut sink,
                    script.transitions()[index as usize],
                    graph,
                    cfg,
                    master,
                    active,
                    faulty,
                    setup,
                    obs,
                );
            }
        }
    }
    for tile in tiles.iter_mut() {
        tile.nodes.copy_from(master);
    }
    (popped, stale, used)
}

/// The sharded run driver behind `cfg.shards > 1` — the parallel twin of
/// the serial drains in [`crate::engine`], byte-identical to them in
/// every output (trace, observer stream, arrival log, RNG consumption).
/// Only the `popped` work counter is approximate: the serial loop pops
/// one beyond-horizon event before breaking, the windowed loop leaves it
/// queued.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_sharded<O: RunObserver>(
    setup: &mut RunSetup,
    graph: &PulseGraph,
    cfg: &SimConfig,
    schedule: &Schedule,
    shard: &mut ShardScratch,
    master: &mut SoaNodes,
    active: &mut [bool],
    faulty: &mut [bool],
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
) -> (u64, u64) {
    shard.prepare(graph, cfg);
    let horizon = setup.horizon;
    let mut counter = 0u64;
    let mut popped = 0u64;
    let mut stale = 0u64;

    // Seed through the router: same handlers, same pre-loop RNG draw
    // order as the serial engine, with granks assigned in push order.
    {
        let ctx = RunCtx {
            graph,
            cfg,
            behaviors: &setup.behaviors,
            delays: &setup.delays,
            active,
            faulty,
            all_links_correct: setup.behaviors.iter().all(|&b| b == LinkBehavior::Correct),
            horizon,
        };
        let ShardScratch {
            map,
            pending,
            sentinels,
            ..
        } = &mut *shard;
        let mut router = SeedRouter {
            graph,
            map,
            pending,
            sentinels,
            counter: &mut counter,
        };
        seed_events(
            &mut router,
            &ctx,
            schedule,
            &setup.sources,
            master,
            obs,
            &mut setup.rng,
        );
    }
    for tile in &mut shard.tiles {
        tile.nodes.copy_from(master);
    }

    let mut next_sent = 0usize;
    loop {
        deliver_pending(shard);
        let head = shard.tiles.iter().filter_map(|t| t.queue.peek_time()).min();
        let sent_at = shard.sentinels.get(next_sent).map(|sen| sen.at);
        let event_due = head.is_some_and(|t| t <= horizon);
        let sent_due = sent_at.is_some_and(|t| t <= horizon);
        if !event_due && !sent_due {
            break;
        }
        if sent_due && head.map_or(true, |h| sent_at.expect("sent_due") <= h) {
            let (p, st, used) = run_instant(
                sent_at.expect("sent_due"),
                next_sent,
                setup,
                graph,
                cfg,
                shard,
                master,
                active,
                faulty,
                obs,
                arrivals,
                &mut counter,
            );
            popped += p;
            stale += st;
            next_sent += used;
            continue;
        }
        let era_limit = match sent_at {
            Some(s) if s <= horizon => Time::from_ps(s.ps() - 1).min(horizon),
            _ => horizon,
        };
        let (p, st) = run_era(
            head.expect("event_due"),
            era_limit,
            setup,
            graph,
            cfg,
            shard,
            active,
            faulty,
            obs,
            arrivals,
            &mut counter,
        );
        popped += p;
        stale += st;
    }
    (popped, stale)
}
