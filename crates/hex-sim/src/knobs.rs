//! The single home of `HEX_*` environment knobs.
//!
//! Reading the process environment is an easy way to smuggle hidden
//! state into an experiment: a run stops being a pure function of
//! `(RunSpec, seed)` the moment some buried call site consults a
//! variable nobody knows about. The `env-knob` rule of `hex-lint`
//! therefore bans `std::env::var` everywhere *except this module*, so
//! the complete set of runtime knobs stays enumerable in one table
//! ([`KNOWN`]) and every caller goes through one strict parser.
//!
//! Knobs are read at explicit points (`RunSpec::with_env`,
//! `QueuePolicy::default`, `Emitter::from_env`, bench setup) — never
//! deep inside the engine hot path.

use std::str::FromStr;

/// Every environment variable the workspace reads, with its meaning.
///
/// The compat shims (`compat/criterion`, `compat/proptest`) read the
/// last two directly — they mirror external crates.io APIs and sit
/// outside the lint walk — but they are listed here so this table stays
/// the complete inventory.
pub const KNOWN: &[(&str, &str)] = &[
    (
        "HEX_RUNS",
        "batch-size override for figure/table drivers and benches",
    ),
    ("HEX_SEED", "base-seed override for RunSpec sweeps"),
    ("HEX_THREADS", "worker-thread-count override for batch runs"),
    (
        "HEX_QUEUE",
        "future-event-list policy: binary_heap | quad_heap | calendar",
    ),
    (
        "HEX_BATCH",
        "engine dispatch: on = bucket-batched SoA kernels (default) | off = scalar reference",
    ),
    (
        "HEX_SHARDS",
        "intra-run tile shards: 1 = serial engine (default) | N = N lockstep column tiles",
    ),
    ("HEX_EMIT", "table output format: csv | json | off"),
    ("HEX_CSV", "legacy alias for HEX_EMIT=csv (presence only)"),
    (
        "HEX_SERVE_ADDR",
        "hexd listen address: `unix:<path>` / a socket path / `host:port`",
    ),
    (
        "HEX_CACHE_DIR",
        "hexd on-disk result-cache directory (default: `hexd-cache`)",
    ),
    (
        "HEX_CACHE_MAX_MB",
        "hexd result-cache size ceiling in MiB (FIFO eviction; 0 = unbounded)",
    ),
    (
        "HEX_SERVE_WORKERS",
        "hexd compute-worker count (default: available parallelism)",
    ),
    (
        "HEX_SERVE_RETRIES",
        "hexctl retry budget when hexd answers `busy` (default: 4; 0 = fail fast)",
    ),
    (
        "HEX_SERVE_TIMEOUT_MS",
        "hexd per-connection socket read/write timeout in ms (default: 10000; 0 = no timeout)",
    ),
    (
        "HEX_BENCH_BUDGET_MS",
        "per-bench time budget (read by the criterion shim)",
    ),
    (
        "PROPTEST_CASES",
        "property-test case budget (read by the proptest shim)",
    ),
];

/// Read a knob's raw value, if set. Panics (debug builds) on a name
/// missing from [`KNOWN`]: new knobs must be added to the table first.
pub fn raw(name: &str) -> Option<String> {
    debug_assert!(
        KNOWN.iter().any(|(n, _)| *n == name),
        "knob {name} is not listed in hex_sim::knobs::KNOWN"
    );
    std::env::var(name).ok()
}

/// True iff the knob is set (to anything), without interpreting it.
pub fn is_set(name: &str) -> bool {
    raw(name).is_some()
}

/// Read and parse a knob. Malformed values panic with a uniform
/// `<NAME> must be <what>` message — a typo'd knob must never silently
/// fall back and change what an experiment measures.
pub fn parsed<T: FromStr>(name: &str, what: &str) -> Option<T> {
    raw(name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{name} must be {what}, got {v:?}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The env mutations below cannot race other readers: every test that
    // touches these knob names within this crate is in this module or
    // documents the same single-reader argument (see
    // `hex_queue_env_knob_selects_the_policy` in spec.rs, which uses
    // HEX_QUEUE — not touched here).

    #[test]
    fn unset_knob_reads_none() {
        std::env::remove_var("HEX_SEED");
        assert_eq!(raw("HEX_SEED"), None);
        assert_eq!(parsed::<u64>("HEX_SEED", "a number"), None);
        assert!(!is_set("HEX_SEED"));
    }

    #[test]
    fn set_knob_parses() {
        // HEX_CSV is only read by hex-analysis (a different test
        // process), so the brief mutation cannot race a reader here.
        std::env::set_var("HEX_CSV", "17");
        assert_eq!(parsed::<usize>("HEX_CSV", "a number"), Some(17));
        assert!(is_set("HEX_CSV"));
        std::env::remove_var("HEX_CSV");
    }

    #[test]
    #[should_panic(expected = "HEX_BENCH_BUDGET_MS must be a number")]
    fn malformed_knob_panics_with_uniform_message() {
        // This knob is only read at bench time, so no concurrently
        // running test can observe the malformed value.
        std::env::set_var("HEX_BENCH_BUDGET_MS", "lots");
        let _ = parsed::<u64>("HEX_BENCH_BUDGET_MS", "a number");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not listed")]
    fn unlisted_knob_is_rejected() {
        let _ = raw("HEX_NOT_A_KNOB");
    }

    #[test]
    #[should_panic(expected = "HEX_SHARDS must be a shard count of 1 or more")]
    fn malformed_shard_knob_panics_with_uniform_message() {
        // Force the engine's process-wide shard default to initialize
        // from the *current* (valid) environment first: afterwards every
        // other test in this process reads the cached value, so the
        // malformed setting below has exactly one reader — this test.
        let _ = crate::engine::shard_default();
        std::env::set_var("HEX_SHARDS", "three");
        let _ = parsed::<usize>("HEX_SHARDS", "a shard count of 1 or more");
    }

    #[test]
    #[should_panic(expected = "HEX_SERVE_RETRIES must be a number of retries")]
    fn malformed_retry_knob_panics_with_uniform_message() {
        // HEX_SERVE_RETRIES is only read by the hex-serve client (a
        // different test process), so the malformed value cannot race a
        // reader here.
        std::env::set_var("HEX_SERVE_RETRIES", "several");
        let _ = parsed::<u32>("HEX_SERVE_RETRIES", "a number of retries");
    }

    #[test]
    fn engine_knobs_are_known() {
        // The engine's dispatch knobs go through the same tripwire; a
        // rename in the table must fail here, not deep inside a run.
        for name in ["HEX_QUEUE", "HEX_BATCH", "HEX_SHARDS"] {
            assert!(
                KNOWN.iter().any(|(n, _)| *n == name),
                "{name} missing from KNOWN"
            );
        }
    }

    #[test]
    fn serve_knobs_are_known() {
        // The hexd daemon reads its configuration exclusively through
        // this module; the tripwire must accept every serve knob.
        for name in [
            "HEX_SERVE_ADDR",
            "HEX_CACHE_DIR",
            "HEX_CACHE_MAX_MB",
            "HEX_SERVE_WORKERS",
            "HEX_SERVE_RETRIES",
            "HEX_SERVE_TIMEOUT_MS",
        ] {
            assert!(
                KNOWN.iter().any(|(n, _)| *n == name),
                "{name} missing from KNOWN"
            );
            // Exercises the debug_assert tripwire path with the real name.
            let _ = raw(name);
        }
    }
}
