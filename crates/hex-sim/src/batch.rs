//! Parallel batch execution of independent simulation runs.
//!
//! The paper's statistics aggregate 250 independent simulation runs per
//! configuration. Runs are pure functions of `(config, seed)`, so the batch
//! is embarrassingly parallel: a crossbeam scoped-thread pool pulls run
//! indices from an atomic counter (work stealing at the granularity of one
//! run) and results are reassembled in index order — the output is
//! **independent of the number of worker threads**, preserving end-to-end
//! determinism.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Execute `runs` independent jobs, `job(run_index) -> T`, on `threads`
/// worker threads (clamped to at least 1; pass
/// [`default_threads`]`()` for the available parallelism). Results are
/// returned in run-index order regardless of scheduling.
pub fn run_batch<T, F>(runs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(runs.max(1));
    if threads <= 1 {
        return (0..runs).map(&job).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> =
        Mutex::new((0..runs).map(|_| None).collect());

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                // Local buffer per worker: lock only once per run to store,
                // not to synchronize work distribution.
                loop {
                    let ix = next.fetch_add(1, Ordering::Relaxed);
                    if ix >= runs {
                        break;
                    }
                    let out = job(ix);
                    results.lock()[ix] = Some(out);
                }
            });
        }
    })
    .expect("batch worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every run produced a result"))
        .collect()
}

/// The machine's available parallelism (≥ 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = run_batch(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_equals_parallel() {
        let seq = run_batch(64, 1, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let par = run_batch(64, 8, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_runs() {
        let out: Vec<u32> = run_batch(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_runs() {
        let out = run_batch(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        run_batch(200, 6, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn parallel_simulation_batch_is_deterministic() {
        use crate::engine::{simulate, SimConfig};
        use hex_core::HexGrid;
        use hex_des::{Schedule, Time};

        let grid = HexGrid::new(5, 5);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 5]);
        let job = |threads: usize| {
            run_batch(16, threads, |run| {
                let trace = simulate(grid.graph(), &sched, &SimConfig::fault_free(), run as u64);
                trace.total_fires()
            })
        };
        assert_eq!(job(1), job(4));
    }
}
