//! Parallel batch execution of independent simulation runs.
//!
//! The paper's statistics aggregate 250 independent simulation runs per
//! configuration. Runs are pure functions of `(config, seed)`, so the batch
//! is embarrassingly parallel: scoped worker threads pull run indices from
//! an atomic counter (work stealing at the granularity of one run) and
//! results are reassembled in index order — the output is **independent of
//! the number of worker threads**, preserving end-to-end determinism.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Execute `runs` independent jobs, `job(run_index) -> T`, on `threads`
/// worker threads (pass [`default_threads`]`()` — or `0` — for the
/// machine's available parallelism). Results are returned in run-index
/// order regardless of scheduling.
pub fn run_batch<T, F>(runs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if threads == 0 { default_threads() } else { threads };
    let threads = threads.min(runs.max(1));
    if threads <= 1 || runs <= 1 {
        return (0..runs).map(&job).collect();
    }
    let next = AtomicUsize::new(0);

    // Each worker buffers (index, result) pairs locally; no shared lock on
    // the hot path. The scope join gives us every buffer back, and a final
    // single-threaded pass restores run-index order.
    let mut buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::with_capacity(runs / threads + 1);
                    loop {
                        let ix = next.fetch_add(1, Ordering::Relaxed);
                        if ix >= runs {
                            break;
                        }
                        local.push((ix, job(ix)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    for (ix, out) in buffers.drain(..).flatten() {
        debug_assert!(slots[ix].is_none(), "run {ix} produced twice");
        slots[ix] = Some(out);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every run produced a result"))
        .collect()
}

/// The machine's available parallelism (≥ 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = run_batch(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_equals_parallel() {
        let seq = run_batch(64, 1, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let par = run_batch(64, 8, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_runs() {
        let out: Vec<u32> = run_batch(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let out = run_batch(32, 0, |i| i + 7);
        assert_eq!(out, (0..32).map(|i| i + 7).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_runs() {
        let out = run_batch(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        run_batch(200, 6, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::time::{Duration, Instant};
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        run_batch(64, 4, |ix| {
            seen.lock().unwrap().insert(std::thread::current().id());
            if ix == 0 {
                // Rendezvous: hold the first run until a second worker has
                // registered, so the assertion cannot race thread spawn on a
                // loaded machine. The deadline only trips if the pool truly
                // failed to engage a second thread.
                let deadline = Instant::now() + Duration::from_secs(5);
                while seen.lock().unwrap().len() < 2 && Instant::now() < deadline {
                    std::thread::yield_now();
                }
            }
        });
        assert!(seen.lock().unwrap().len() >= 2, "batch ran serially");
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn parallel_simulation_batch_is_deterministic() {
        use crate::engine::{simulate, SimConfig};
        use hex_core::HexGrid;
        use hex_des::{Schedule, Time};

        let grid = HexGrid::new(5, 5);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 5]);
        let job = |threads: usize| {
            run_batch(16, threads, |run| {
                let trace = simulate(grid.graph(), &sched, &SimConfig::fault_free(), run as u64);
                trace.total_fires()
            })
        };
        assert_eq!(job(1), job(4));
    }
}
