//! Parallel batch execution of independent simulation runs.
//!
//! The paper's statistics aggregate 250 independent simulation runs per
//! configuration. Runs are pure functions of `(config, seed)`, so the batch
//! is embarrassingly parallel: scoped worker threads (`std::thread::scope`)
//! pull work from an atomic counter (work stealing) and results are
//! reassembled in run-index order — the output is **independent of the
//! number of worker threads**, preserving end-to-end determinism.
//!
//! Two entry points:
//!
//! * [`run_batch`] materializes every result (`Vec<T>`, run-index order) —
//!   right when downstream analysis needs all runs side by side;
//! * [`run_batch_fold`] streams each result into a [`Reducer`] **inside the
//!   worker that produced it**, so a 250-run sweep never holds 250 traces
//!   (or views) in memory and the reduction itself runs in parallel. The
//!   merged accumulator is identical to `run_batch` + a sequential fold,
//!   at any thread count.
//!
//! ```
//! use hex_sim::batch::{run_batch, run_batch_fold, Reducer};
//!
//! /// Sums `f(run)` and remembers how many runs contributed.
//! struct Sum;
//! impl Reducer<u64> for Sum {
//!     type Acc = (u64, usize);
//!     fn empty(&self) -> Self::Acc {
//!         (0, 0)
//!     }
//!     fn fold(&self, acc: &mut Self::Acc, _run: usize, item: u64) {
//!         acc.0 += item;
//!         acc.1 += 1;
//!     }
//!     fn merge(&self, left: Self::Acc, right: Self::Acc) -> Self::Acc {
//!         (left.0 + right.0, left.1 + right.1)
//!     }
//! }
//!
//! let job = |run: usize| (run as u64) * 3;
//! let streamed = run_batch_fold(100, 4, job, &Sum);
//! let materialized: u64 = run_batch(100, 4, job).into_iter().sum();
//! assert_eq!(streamed, (materialized, 100));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Execute `runs` independent jobs, `job(run_index) -> T`, on `threads`
/// worker threads (pass [`default_threads`]`()` — or `0` — for the
/// machine's available parallelism). Results are returned in run-index
/// order regardless of scheduling.
pub fn run_batch<T, F>(runs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_batch_with(runs, threads, || (), |(), run| job(run))
}

/// [`run_batch`] with one worker-owned scratch value: `make_scratch` runs
/// once per worker thread (once total on the serial path) and every job on
/// that worker gets `&mut` access to its scratch. This is how the
/// simulation batch paths reuse a [`SimScratch`](crate::SimScratch) —
/// O(threads) scratch allocations for any number of runs — without
/// affecting the output: results are still returned in run-index order.
pub fn run_batch_with<S, T, FS, F>(runs: usize, threads: usize, make_scratch: FS, job: F) -> Vec<T>
where
    T: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let threads = threads.min(runs.max(1));
    if threads <= 1 || runs <= 1 {
        let mut scratch = make_scratch();
        return (0..runs).map(|run| job(&mut scratch, run)).collect();
    }
    let next = AtomicUsize::new(0);

    // Each worker buffers (index, result) pairs locally; no shared lock on
    // the hot path. The scope join gives us every buffer back, and a final
    // single-threaded pass restores run-index order.
    let mut buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = make_scratch();
                    let mut local = Vec::with_capacity(runs / threads + 1);
                    loop {
                        let ix = next.fetch_add(1, Ordering::Relaxed);
                        if ix >= runs {
                            break;
                        }
                        local.push((ix, job(&mut scratch, ix)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    for (ix, out) in buffers.drain(..).flatten() {
        debug_assert!(slots[ix].is_none(), "run {ix} produced twice");
        slots[ix] = Some(out);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every run produced a result"))
        .collect()
}

/// A parallel map-reduce contract for [`run_batch_fold`].
///
/// Implementations describe how per-run results are folded into an
/// accumulator and how two accumulators covering disjoint, *consecutive*
/// run ranges are merged. For the batch output to be independent of the
/// thread count, `merge` must agree with concatenation:
///
/// ```text
/// merge(fold_all(empty, runs a..b), fold_all(empty, runs b..c))
///     == fold_all(empty, runs a..c)
/// ```
///
/// which every "append to vectors / add to tallies" reduction satisfies.
/// `merge` is always called with `left` covering the lower run indices.
///
/// The item type is whatever the batch produces per run: materialized
/// [`RunView`](crate::RunView)s for [`RunSpec::fold`](crate::RunSpec::fold),
/// or borrowed [`PulseBinner`](crate::PulseBinner) observer state for the
/// streaming [`RunSpec::fold_observed`](crate::RunSpec::fold_observed) —
/// the same contract covers both extraction paths.
pub trait Reducer<T> {
    /// The accumulator type.
    type Acc: Send;

    /// A fresh (identity) accumulator.
    fn empty(&self) -> Self::Acc;

    /// Fold one run's result into the accumulator. Called exactly once per
    /// run, in ascending run order *within* each accumulator.
    fn fold(&self, acc: &mut Self::Acc, run: usize, item: T);

    /// Fold one run's result **by reference**, leaving `item` intact so the
    /// caller can reuse its buffers for the next run (the scratch-backed
    /// batch paths depend on this). The default clones and delegates to
    /// [`Reducer::fold`]; reducers that only read the item override it to
    /// skip the clone.
    fn fold_ref(&self, acc: &mut Self::Acc, run: usize, item: &T)
    where
        T: Clone,
    {
        self.fold(acc, run, item.clone());
    }

    /// Merge two accumulators; `left` covers strictly lower run indices
    /// than `right`.
    fn merge(&self, left: Self::Acc, right: Self::Acc) -> Self::Acc;
}

/// Execute `runs` independent jobs and reduce their results on the worker
/// threads, returning the merged accumulator.
///
/// Workers steal *contiguous chunks* of run indices and fold each chunk
/// into its own accumulator as results are produced — no `Vec<T>` of all
/// results ever exists. Chunk accumulators are merged in ascending
/// run-range order after the scope joins, so for any [`Reducer`] honoring
/// the concatenation law the result equals
/// `run_batch(runs, _, job)` followed by a sequential fold — **at any
/// thread count** (see `spec_equivalence` tests at the workspace root).
pub fn run_batch_fold<T, F, R>(runs: usize, threads: usize, job: F, reducer: &R) -> R::Acc
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: Reducer<T> + Sync,
{
    run_batch_fold_with(
        runs,
        threads,
        || (),
        || reducer.empty(),
        |(), acc, run| reducer.fold(acc, run, job(run)),
        |left, right| reducer.merge(left, right),
    )
}

/// The scratch-aware core of [`run_batch_fold`], expressed in accumulator
/// operations so the per-run closure can both *produce* (into its worker's
/// scratch) and *reduce* (into the chunk accumulator) without the result
/// ever being moved: `fold_run(&mut scratch, &mut acc, run)`.
///
/// `make_scratch` runs once per worker (once total on the serial path), so
/// a batch performs O(threads) scratch allocations. Chunk boundaries and
/// the merge order are identical to [`run_batch_fold`]'s: for any
/// concatenation-lawful `(empty, fold_run, merge)` triple the result is
/// independent of the thread count.
pub fn run_batch_fold_with<S, A, FS, FE, F, FM>(
    runs: usize,
    threads: usize,
    make_scratch: FS,
    empty: FE,
    fold_run: F,
    merge: FM,
) -> A
where
    A: Send,
    FS: Fn() -> S + Sync,
    FE: Fn() -> A + Sync,
    F: Fn(&mut S, &mut A, usize) + Sync,
    FM: Fn(A, A) -> A,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let threads = threads.min(runs.max(1));
    if threads <= 1 || runs <= 1 {
        let mut scratch = make_scratch();
        let mut acc = empty();
        for run in 0..runs {
            fold_run(&mut scratch, &mut acc, run);
        }
        return acc;
    }

    // Chunked work stealing: big enough chunks to amortize the atomic and
    // keep per-chunk accumulators few, small enough to balance load.
    let chunk = (runs / (threads * 8)).max(1);
    let next = AtomicUsize::new(0);

    let mut parts: Vec<(usize, A)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = make_scratch();
                    let mut local: Vec<(usize, A)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= runs {
                            break;
                        }
                        let end = (start + chunk).min(runs);
                        let mut acc = empty();
                        for run in start..end {
                            fold_run(&mut scratch, &mut acc, run);
                        }
                        local.push((start, acc));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    // Restore run order: chunks are disjoint, so sorting by start index
    // yields consecutive ranges; merge left to right.
    parts.sort_by_key(|&(start, _)| start);
    parts.into_iter().map(|(_, acc)| acc).fold(empty(), merge)
}

/// The machine's available parallelism (≥ 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = run_batch(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_equals_parallel() {
        let seq = run_batch(64, 1, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let par = run_batch(64, 8, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_runs() {
        let out: Vec<u32> = run_batch(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let out = run_batch(32, 0, |i| i + 7);
        assert_eq!(out, (0..32).map(|i| i + 7).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_runs() {
        let out = run_batch(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        run_batch(200, 6, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        // ThreadId implements neither Ord nor any stable total order, so
        // a BTreeSet cannot replace this census; the set is only ever
        // queried for its size, never iterated.
        // hexlint: allow(nondet-collection, reason = "test-only thread census, counted not iterated")
        use std::collections::HashSet;
        use std::sync::Mutex;
        // hexlint: allow(wall-clock, reason = "watchdog deadline for a liveness assertion; never feeds simulated time")
        use std::time::{Duration, Instant};
        // hexlint: allow(nondet-collection, reason = "test-only thread census, counted not iterated")
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        run_batch(64, 4, |ix| {
            seen.lock().unwrap().insert(std::thread::current().id());
            if ix == 0 {
                // Rendezvous: hold the first run until a second worker has
                // registered, so the assertion cannot race thread spawn on a
                // loaded machine. The deadline only trips if the pool truly
                // failed to engage a second thread.
                // hexlint: allow(wall-clock, reason = "watchdog deadline for a liveness assertion; never feeds simulated time")
                let deadline = Instant::now() + Duration::from_secs(5);
                // hexlint: allow(wall-clock, reason = "watchdog deadline for a liveness assertion; never feeds simulated time")
                while seen.lock().unwrap().len() < 2 && Instant::now() < deadline {
                    std::thread::yield_now();
                }
            }
        });
        assert!(seen.lock().unwrap().len() >= 2, "batch ran serially");
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    /// Order-sensitive reducer: concatenates `(run, item)` pairs. Any
    /// scheduling bug that breaks run order or drops/duplicates a run
    /// changes the output.
    struct Collect;
    impl Reducer<u64> for Collect {
        type Acc = Vec<(usize, u64)>;
        fn empty(&self) -> Self::Acc {
            Vec::new()
        }
        fn fold(&self, acc: &mut Self::Acc, run: usize, item: u64) {
            acc.push((run, item));
        }
        fn merge(&self, mut left: Self::Acc, right: Self::Acc) -> Self::Acc {
            left.extend(right);
            left
        }
    }

    #[test]
    fn fold_equals_sequential_fold_at_any_thread_count() {
        let job = |run: usize| (run as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let expected: Vec<(usize, u64)> = (0..137).map(|r| (r, job(r))).collect();
        for threads in [0, 1, 2, 3, 7, 16, 200] {
            assert_eq!(
                run_batch_fold(137, threads, job, &Collect),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn fold_zero_runs_is_empty() {
        let acc = run_batch_fold(0, 4, |_| unreachable!(), &Collect);
        assert!(acc.is_empty());
    }

    #[test]
    fn fold_folds_each_run_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        run_batch_fold(
            200,
            6,
            |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
                i as u64
            },
            &Collect,
        );
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn parallel_simulation_batch_is_deterministic() {
        use crate::engine::{simulate, SimConfig};
        use hex_core::HexGrid;
        use hex_des::{Schedule, Time};

        let grid = HexGrid::new(5, 5);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 5]);
        let job = |threads: usize| {
            run_batch(16, threads, |run| {
                let trace = simulate(grid.graph(), &sched, &SimConfig::fault_free(), run as u64);
                trace.total_fires()
            })
        };
        assert_eq!(job(1), job(4));
    }
}
