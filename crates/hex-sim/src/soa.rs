//! Structure-of-arrays node state for the engine hot loop.
//!
//! [`SoaNodes`] carries the same dynamic state as one [`NodeState`] per node
//! — firing machine, per-port memory flags, and the epoch counters that
//! cancel stale timers — but split into parallel vectors so batch kernels
//! touch dense arrays instead of chasing one heap allocation per node:
//!
//! * `sleeping[n]` / `sleep_epochs[n]` — the firing state machine,
//! * `flags[..]` / `flag_epochs[..]` — all ports of all nodes flattened into
//!   one pair of arrays, with `port_base[n]..port_base[n + 1]` delimiting
//!   node `n`'s slice (CSR-style offsets, matching the link layout in
//!   [`PulseGraph`]).
//!
//! Every transition method mirrors the corresponding [`NodeState`] method
//! *exactly* — same epoch bumps, same return values, same panics — so the
//! scalar and batched engine paths stay byte-identical. The parity proptest
//! at the bottom drives both representations through identical random
//! operation sequences and compares every observable after every step.
//! `fire_count` is intentionally not replicated: the engine never reads it
//! (fires are counted by the trace).

use hex_core::node::ArbitraryEpochs;
use hex_core::{NodeId, NodeState, PulseGraph};

/// Parallel-vector node state for a whole graph. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct SoaNodes {
    /// Firing machine per node: `true` = `Sleeping`, `false` = `Ready`.
    sleeping: Vec<bool>,
    /// Sleep-timer epoch per node.
    sleep_epochs: Vec<u32>,
    /// CSR offsets: node `n`'s ports live at `port_base[n]..port_base[n+1]`.
    /// Always `node_count + 1` entries (last = total port count).
    port_base: Vec<u32>,
    /// Memory flag per (node, in-port), flattened.
    flags: Vec<bool>,
    /// Flag-timer epoch per (node, in-port), flattened.
    flag_epochs: Vec<u32>,
}

impl SoaNodes {
    /// Empty state holding no nodes; [`SoaNodes::rebuild`] sizes it.
    pub fn new() -> Self {
        SoaNodes::default()
    }

    /// Resize for `graph` and reset every node to the clean state
    /// ([`NodeState::clean`]: ready, flags clear, epochs zero).
    pub fn rebuild(&mut self, graph: &PulseGraph) {
        let nodes = graph.node_count();
        self.port_base.clear();
        self.port_base.reserve(nodes + 1);
        let mut total = 0u32;
        self.port_base.push(0);
        for id in graph.node_ids() {
            total += graph.port_count(id) as u32;
            self.port_base.push(total);
        }
        self.sleeping.clear();
        self.sleeping.resize(nodes, false);
        self.sleep_epochs.clear();
        self.sleep_epochs.resize(nodes, 0);
        self.flags.clear();
        self.flags.resize(total as usize, false);
        self.flag_epochs.clear();
        self.flag_epochs.resize(total as usize, 0);
    }

    /// Reset to the clean state without changing shape. Equivalent to
    /// [`NodeState::reset_clean`] on every node: a reset state is
    /// indistinguishable from a freshly built one, so scratch reuse cannot
    /// perturb determinism.
    pub fn reset_clean(&mut self) {
        self.sleeping.fill(false);
        self.sleep_epochs.fill(0);
        self.flags.fill(false);
        self.flag_epochs.fill(0);
    }

    /// Whether the current shape matches `graph` (same node count, same
    /// per-node port counts). Used by scratch recycling to decide between
    /// [`SoaNodes::reset_clean`] and [`SoaNodes::rebuild`].
    pub fn matches(&self, graph: &PulseGraph) -> bool {
        self.sleeping.len() == graph.node_count()
            && self.port_base.len() == graph.node_count() + 1
            && graph
                .node_ids()
                .all(|id| self.ports(id) == graph.port_count(id))
    }

    /// Number of nodes currently held.
    pub fn node_count(&self) -> usize {
        self.sleeping.len()
    }

    /// Number of in-ports of `node`.
    pub fn ports(&self, node: NodeId) -> usize {
        let n = node as usize;
        (self.port_base[n + 1] - self.port_base[n]) as usize
    }

    #[inline]
    fn slot(&self, node: NodeId, port: u8) -> usize {
        let i = self.port_base[node as usize] as usize + port as usize;
        debug_assert!(
            (port as usize) < self.ports(node),
            "port {port} out of range for node {node}"
        );
        i
    }

    /// Whether `node` is sleeping (`FiringState::Sleeping`).
    #[inline]
    pub fn is_sleeping(&self, node: NodeId) -> bool {
        self.sleeping[node as usize]
    }

    /// Current sleep epoch of `node`.
    #[inline]
    pub fn sleep_epoch(&self, node: NodeId) -> u32 {
        self.sleep_epochs[node as usize]
    }

    /// Whether the flag of (`node`, `port`) is set.
    #[inline]
    pub fn flag(&self, node: NodeId, port: u8) -> bool {
        self.flags[self.slot(node, port)]
    }

    /// Current epoch of the flag of (`node`, `port`).
    #[inline]
    pub fn flag_epoch(&self, node: NodeId, port: u8) -> u32 {
        self.flag_epochs[self.slot(node, port)]
    }

    /// Trigger message received on `port` (mirrors [`NodeState::set_flag`]):
    /// `Some(new_epoch)` if the flag was newly set, `None` if already set.
    #[inline]
    pub fn set_flag(&mut self, node: NodeId, port: u8) -> Option<u32> {
        let i = self.slot(node, port);
        if self.flags[i] {
            return None;
        }
        self.flags[i] = true;
        self.flag_epochs[i] += 1;
        Some(self.flag_epochs[i])
    }

    /// Link timeout expired (mirrors [`NodeState::expire_flag`]): clears the
    /// flag and returns `true` iff it is set *and* `epoch` is current.
    #[inline]
    pub fn expire_flag(&mut self, node: NodeId, port: u8, epoch: u32) -> bool {
        let i = self.slot(node, port);
        if self.flags[i] && self.flag_epochs[i] == epoch {
            self.flags[i] = false;
            self.flag_epochs[i] += 1;
            true
        } else {
            false
        }
    }

    /// Index of the first satisfied guard pair (mirrors
    /// [`NodeState::satisfied_guard`]).
    #[inline]
    pub fn satisfied_guard(&self, node: NodeId, guard: &[(u8, u8)]) -> Option<usize> {
        let base = self.port_base[node as usize] as usize;
        let flags = &self.flags[base..self.port_base[node as usize + 1] as usize];
        guard
            .iter()
            .position(|&(a, b)| flags[a as usize] && flags[b as usize])
    }

    /// Fire (mirrors [`NodeState::fire`]): ready → sleeping, returning the
    /// new sleep epoch for the wake-up event.
    ///
    /// # Panics
    ///
    /// Panics if `node` is sleeping, exactly like [`NodeState::fire`].
    #[inline]
    pub fn fire(&mut self, node: NodeId) -> u32 {
        let n = node as usize;
        assert!(!self.sleeping[n], "node {node} fired while sleeping");
        self.sleeping[n] = true;
        self.sleep_epochs[n] += 1;
        self.sleep_epochs[n]
    }

    /// Sleep timeout expired (mirrors [`NodeState::wake`]): sleeping → ready
    /// and all flags cleared iff `epoch` is current.
    #[inline]
    pub fn wake(&mut self, node: NodeId, epoch: u32) -> bool {
        let n = node as usize;
        if self.sleeping[n] && self.sleep_epochs[n] == epoch {
            self.sleeping[n] = false;
            self.clear_all_flags(node);
            true
        } else {
            false
        }
    }

    /// Clear every set flag of `node`, bumping its epoch (mirrors
    /// [`NodeState::clear_all_flags`]).
    #[inline]
    pub fn clear_all_flags(&mut self, node: NodeId) {
        let lo = self.port_base[node as usize] as usize;
        let hi = self.port_base[node as usize + 1] as usize;
        for i in lo..hi {
            if self.flags[i] {
                self.flags[i] = false;
                self.flag_epochs[i] += 1;
            }
        }
    }

    /// Force an arbitrary state for self-stabilization experiments (mirrors
    /// [`NodeState::force_arbitrary`]): set the firing machine, bump the
    /// sleep epoch unconditionally, clear-then-set flags, and return the
    /// epochs for the caller's residual timeout events.
    pub fn force_arbitrary(
        &mut self,
        node: NodeId,
        sleeping: bool,
        set_flags: &[u8],
    ) -> ArbitraryEpochs {
        let n = node as usize;
        self.sleeping[n] = sleeping;
        self.sleep_epochs[n] += 1;
        self.clear_all_flags(node);
        let mut flag_epochs = Vec::with_capacity(set_flags.len());
        for &port in set_flags {
            let e = self
                .set_flag(node, port)
                .expect("duplicate port in set_flags");
            flag_epochs.push((port, e));
        }
        ArbitraryEpochs {
            sleep_epoch: if sleeping {
                Some(self.sleep_epochs[n])
            } else {
                None
            },
            flag_epochs,
        }
    }

    /// Make `self` state-identical to `other`, reusing the existing
    /// allocations (`Vec::clone_from` per column). The sharded engine
    /// scatters the master state into every tile copy with this after a
    /// script instant.
    pub fn copy_from(&mut self, other: &SoaNodes) {
        self.sleeping.clone_from(&other.sleeping);
        self.sleep_epochs.clone_from(&other.sleep_epochs);
        self.port_base.clone_from(&other.port_base);
        self.flags.clone_from(&other.flags);
        self.flag_epochs.clone_from(&other.flag_epochs);
    }

    /// Copy the full state of one node — firing machine plus every port
    /// flag and epoch — from a same-shape `other`. The sharded engine
    /// gathers tile-owned nodes back into the master state with this
    /// before serially applying a script instant.
    pub(crate) fn copy_node_from(&mut self, other: &SoaNodes, node: NodeId) {
        let n = node as usize;
        debug_assert_eq!(self.port_base, other.port_base, "shape mismatch");
        self.sleeping[n] = other.sleeping[n];
        self.sleep_epochs[n] = other.sleep_epochs[n];
        let lo = self.port_base[n] as usize;
        let hi = self.port_base[n + 1] as usize;
        self.flags[lo..hi].copy_from_slice(&other.flags[lo..hi]);
        self.flag_epochs[lo..hi].copy_from_slice(&other.flag_epochs[lo..hi]);
    }

    /// Compare every observable of `node` against a [`NodeState`] reference.
    /// Test support for the parity walls; not used by the engine.
    pub fn parity_eq(&self, reference: &NodeState) -> bool {
        let node = reference.id();
        let sleeping = reference.firing_state() == hex_core::FiringState::Sleeping;
        self.ports(node) == reference.ports()
            && self.is_sleeping(node) == sleeping
            && self.sleep_epoch(node) == reference.sleep_epoch()
            && (0..reference.ports() as u8).all(|p| {
                self.flag(node, p) == reference.flag(p)
                    && self.flag_epoch(node, p) == reference.flag_epoch(p)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hex_core::HexGrid;
    use proptest::prelude::*;

    fn grid_graph() -> PulseGraph {
        HexGrid::new(6, 4).into_graph()
    }

    fn fresh_pair() -> (SoaNodes, Vec<NodeState>) {
        let graph = grid_graph();
        let mut soa = SoaNodes::new();
        soa.rebuild(&graph);
        let aos = graph
            .node_ids()
            .map(|id| NodeState::clean(id, graph.port_count(id)))
            .collect();
        (soa, aos)
    }

    #[test]
    fn rebuild_matches_graph_shape() {
        let graph = grid_graph();
        let mut soa = SoaNodes::new();
        assert!(!soa.matches(&graph));
        soa.rebuild(&graph);
        assert!(soa.matches(&graph));
        assert_eq!(soa.node_count(), graph.node_count());
        for id in graph.node_ids() {
            assert_eq!(soa.ports(id), graph.port_count(id));
        }
        // A different geometry no longer matches.
        let other = HexGrid::new(5, 4).into_graph();
        assert!(!soa.matches(&other));
    }

    #[test]
    fn reset_clean_equals_rebuild() {
        let graph = grid_graph();
        let (mut soa, _) = fresh_pair();
        soa.fire(3);
        soa.set_flag(7, 1);
        soa.force_arbitrary(9, true, &[0, 2]);
        soa.reset_clean();
        let mut fresh = SoaNodes::new();
        fresh.rebuild(&graph);
        for id in graph.node_ids() {
            assert_eq!(soa.is_sleeping(id), fresh.is_sleeping(id));
            assert_eq!(soa.sleep_epoch(id), fresh.sleep_epoch(id));
            for p in 0..soa.ports(id) as u8 {
                assert_eq!(soa.flag(id, p), fresh.flag(id, p));
                assert_eq!(soa.flag_epoch(id, p), fresh.flag_epoch(id, p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "fired while sleeping")]
    fn fire_while_sleeping_panics_like_nodestate() {
        let (mut soa, _) = fresh_pair();
        soa.fire(5);
        soa.fire(5);
    }

    proptest! {
        // Shared CI case budget: pin 32 cases (= compat/proptest DEFAULT_CASES).
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Drive SoA and per-node-struct state through the same random
        /// operation sequence; every return value and every observable must
        /// agree after every single step.
        #[test]
        fn prop_soa_matches_nodestate(
            ops in prop::collection::vec(
                (0u32..24, 0u8..4, 0u8..6, any::<bool>()), 1..250),
        ) {
            let (mut soa, mut aos) = fresh_pair();
            for (node, port, op, arg) in ops {
                let node = node % soa.node_count() as u32;
                let st = &mut aos[node as usize];
                let port = (port as usize % st.ports().max(1)) as u8;
                if st.ports() == 0 && matches!(op, 0 | 1) {
                    continue; // sources have no in-ports
                }
                match op {
                    0 => prop_assert_eq!(soa.set_flag(node, port), st.set_flag(port)),
                    1 => {
                        // Mix current and stale epochs.
                        let e = if arg { st.flag_epoch(port) } else { st.flag_epoch(port).wrapping_sub(1) };
                        prop_assert_eq!(soa.expire_flag(node, port, e), st.expire_flag(port, e));
                    }
                    2 => {
                        if st.firing_state() == hex_core::FiringState::Ready {
                            prop_assert_eq!(soa.fire(node), st.fire());
                        }
                    }
                    3 => {
                        let e = if arg { st.sleep_epoch() } else { st.sleep_epoch().wrapping_sub(1) };
                        prop_assert_eq!(soa.wake(node, e), st.wake(e));
                    }
                    4 => {
                        let set: Vec<u8> = if st.ports() >= 2 && arg { vec![0, 1] } else { vec![] };
                        let a = soa.force_arbitrary(node, arg, &set);
                        let b = st.force_arbitrary(arg, &set);
                        prop_assert_eq!(a.sleep_epoch, b.sleep_epoch);
                        prop_assert_eq!(a.flag_epochs, b.flag_epochs);
                    }
                    _ => {
                        soa.clear_all_flags(node);
                        st.clear_all_flags();
                    }
                }
                prop_assert!(soa.parity_eq(&aos[node as usize]), "node {} diverged", node);
            }
            // Final sweep: every node, every observable.
            for st in &aos {
                prop_assert!(soa.parity_eq(st));
            }
            // Guard evaluation parity on the grid guard of each node.
            let graph = grid_graph();
            for id in graph.node_ids() {
                prop_assert_eq!(
                    soa.satisfied_guard(id, graph.guard(id)),
                    aos[id as usize].satisfied_guard(graph.guard(id))
                );
            }
        }
    }
}
