//! The simulation engine: Algorithm 1 + Fig. 7 state machines on any
//! [`PulseGraph`], under configurable delays, faults and initial states.
//!
//! ## Event model
//!
//! * `SourceFire` — a layer-0 source emits its scheduled pulse;
//! * `Deliver` — a trigger message arrives at a link's receiver (memory-flag
//!   SM: ready → memorize);
//! * `LinkTimeout` — a memory flag expires (memorize → ready), epoch-tagged;
//! * `Wake` — a sleep timeout expires (sleeping → ready, flags cleared),
//!   epoch-tagged.
//!
//! ## Future event list
//!
//! Every event the engine schedules lands inside a bounded lookahead
//! window of the current instant (`[d-, d+]` deliveries, `[T-, T+]` link
//! and sleep timeouts), so the event list is pluggable via
//! [`QueuePolicy`]: the `std::collections::BinaryHeap`-backed
//! [`EventQueue`], the 4-ary [`QuadHeapQueue`], or the bounded-horizon
//! [`CalendarQueue`] — all three pop byte-identically (`(time, seq)`
//! order, FIFO ties), which the workspace determinism wall pins across
//! policies. The hot loop is monomorphized per queue through the sealed
//! [`FutureEventList`] trait; no per-event dynamic dispatch.
//!
//! ## Fault semantics
//!
//! Outgoing links of faulty nodes (and explicitly overridden links) are
//! resolved to [`LinkBehavior`]s at simulation start:
//!
//! * `StuckZero` never delivers anything;
//! * `StuckOne` holds the receiver's port at logical 1: the port's memory
//!   flag is set at simulation start and **re-sets itself the instant it is
//!   cleared** (by link timeout or wake-up) — the paper's "constant 1 ⇒
//!   fast triggering" behaviour. Faulty nodes themselves are inert: their
//!   own firing rule is irrelevant because their outputs are constants.

use hex_core::delay::ResolvedDelays;
use hex_core::{
    DelayModel, FaultEvent, FaultPlan, FaultScript, FaultTransition, HexGrid, LinkBehavior,
    NodeFault, NodeId, PulseGraph, RejoinState, Role, Timing, TriggerCause,
};
use hex_des::{
    CalendarQueue, Duration, EventQueue, FutureEventList, QuadHeapQueue, Schedule, SimRng, Time,
};

use crate::observe::{FireLog, PulseBinner, RunObserver};
use crate::soa::SoaNodes;
use crate::trace::{Arrival, Trace};

/// Initial node states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitState {
    /// All nodes ready with cleared memory flags — the properly-initialized
    /// state assumed by the Section 3.1 analysis (constraints (C1)/(C2)).
    Clean,
    /// Every forwarder starts in an arbitrary state (Theorem 2): firing SM
    /// ready or sleeping with a uniform residual sleep in `[0, T+_sleep]`,
    /// each memory flag independently set with probability 1/2 with a
    /// uniform residual timeout in `[0, T+_link]`.
    Arbitrary,
    /// Adversarial corruption: every forwarder is ready with **all** memory
    /// flags set and full link timeouts — the whole fabric emits one
    /// spurious global pulse at time 0 and must recover. The worst case for
    /// spurious-pulse confusion within Theorem 2's state space.
    AllFlagsSet,
    /// Adversarial corruption: every forwarder is asleep with the maximal
    /// residual sleep `T+_sleep` and cleared flags — the fabric misses the
    /// earliest trigger messages and must resynchronize off link timeouts.
    /// The worst case for missed-pulse recovery.
    AllAsleep,
}

/// Which [`FutureEventList`] implementation the engine runs on.
///
/// All three produce byte-identical traces (pinned by the determinism
/// wall); the policy only trades queue-operation cost. The default is the
/// winner of the three-way `pq`/`des_engine` ablation
/// (`scripts/bench_snapshot.sh` records it in `BENCH_*.json`): the
/// bounded-horizon calendar ring wins every engine workload — ~20% on
/// `single_pulse/grid/100x40`, ~27% on the stabilization regime, and
/// 1.6–2× on raw hold-model queue ops — because every HEX scheduling
/// increment is bounded, the structure a bucket ring exploits for O(1)
/// amortized push/pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// `std::collections::BinaryHeap` via [`EventQueue`]: the measured
    /// runner-up, and the reference implementation the walls compare
    /// against.
    BinaryHeap,
    /// 4-ary implicit heap ([`QuadHeapQueue`]): fewer cache-missing
    /// levels, more comparisons per sift. Loses to both others on HEX
    /// workloads; kept as the measured counterfactual.
    QuadHeap,
    /// Bounded-horizon calendar ring ([`CalendarQueue`]), sized per run
    /// from the delivery envelope and the graph's node count (see
    /// `calendar_geometry`) — the measured default.
    Calendar,
}

impl Default for QueuePolicy {
    /// The calendar ring (the ablation winner) — unless `HEX_QUEUE` names
    /// another policy, in which case the whole process defaults to that
    /// one. The variable is read once and cached, so the default is
    /// stable for the process lifetime; all policies produce byte-
    /// identical output, so this is purely a performance (and CI
    /// coverage: the test matrix re-runs the full suite under
    /// `HEX_QUEUE=binary_heap`) knob.
    fn default() -> Self {
        static ENV_DEFAULT: std::sync::OnceLock<QueuePolicy> = std::sync::OnceLock::new();
        *ENV_DEFAULT.get_or_init(|| {
            crate::knobs::parsed("HEX_QUEUE", "binary_heap, quad_heap or calendar")
                .unwrap_or(QueuePolicy::Calendar)
        })
    }
}

impl QueuePolicy {
    /// Every policy, in ablation-report order.
    pub const ALL: [QueuePolicy; 3] = [
        QueuePolicy::BinaryHeap,
        QueuePolicy::QuadHeap,
        QueuePolicy::Calendar,
    ];

    /// Short label used by benches and the `HEX_QUEUE` env knob.
    pub fn label(self) -> &'static str {
        match self {
            QueuePolicy::BinaryHeap => "binary_heap",
            QueuePolicy::QuadHeap => "quad_heap",
            QueuePolicy::Calendar => "calendar",
        }
    }
}

impl std::str::FromStr for QueuePolicy {
    type Err = String;

    /// Accepts the bench labels and their obvious shorthands
    /// (`binary_heap`/`binary`/`heap`, `quad_heap`/`quad`, `calendar`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "binary_heap" | "binary" | "heap" => Ok(QueuePolicy::BinaryHeap),
            "quad_heap" | "quad" => Ok(QueuePolicy::QuadHeap),
            "calendar" => Ok(QueuePolicy::Calendar),
            other => Err(format!(
                "unknown queue policy {other:?} (expected binary_heap, quad_heap or calendar)"
            )),
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Link-delay model (random per message, per link, or deterministic).
    pub delays: DelayModel,
    /// Algorithm-1 timeout parameters.
    pub timing: Timing,
    /// Fault assignment.
    pub faults: FaultPlan,
    /// Initial state regime.
    pub init: InitState,
    /// Hard simulation end time. `None` derives a horizon generous enough
    /// for the whole schedule to propagate through the grid (see
    /// [`SimConfig::auto_horizon`]).
    pub horizon: Option<Time>,
    /// Record every flag-setting message arrival into
    /// [`Trace::arrivals`] (provenance for the execution checker;
    /// off by default — it costs memory proportional to message count).
    pub record_arrivals: bool,
    /// Future-event-list implementation (identical output either way).
    pub queue: QueuePolicy,
    /// Drain the event list in bucket batches through the
    /// structure-of-arrays kernels instead of one event at a time
    /// (identical output either way, pinned by the determinism wall; see
    /// [`batch_default`] for the `HEX_BATCH` escape hatch). Like `queue`,
    /// this is a pure execution-strategy knob and is deliberately **not**
    /// part of the canonical run encoding.
    pub batch: bool,
    /// Number of lockstep grid tiles one run is sharded across
    /// (`hex_sim::shard`). 1 (the default) runs today's serial engine;
    /// larger values partition the grid into column tiles that drain
    /// conservative time windows in parallel. Like `queue` and `batch`
    /// this is a pure execution-strategy knob — outputs are
    /// shard-count-independent (pinned by the determinism wall) and the
    /// value is deliberately **not** part of the canonical run encoding.
    /// See [`shard_default`] for the `HEX_SHARDS` env knob.
    pub shards: usize,
    /// Dynamic fault timeline: scheduled [`FaultTransition`]s that flip
    /// the hoisted `active`/`faulty` bitmasks (and the link-behaviour
    /// table) mid-run. `None` (or an empty script) runs the static-plan
    /// engine byte-identically to before the subsystem existed. All
    /// script-induced randomness (Byzantine link draws, arbitrary-rejoin
    /// states, residual timers) comes from a **separate RNG stream**
    /// seeded `seed ^ SCRIPT_SALT`, so the main draw sequence is
    /// untouched by the script machinery.
    pub script: Option<FaultScript>,
}

/// Seed salt of the script RNG stream: all apply-time draws of a
/// [`FaultScript`] come from `SimRng::seed_from_u64(seed ^ SCRIPT_SALT)`,
/// leaving the main per-run stream (delays, behaviours, in-loop timers)
/// byte-identical to an unscripted run.
pub const SCRIPT_SALT: u64 = 0x5EED_5C21;

/// The process-wide default for [`SimConfig::batch`]: batched kernels on,
/// unless the `HEX_BATCH` env knob turns them off (`off`/`0`/`false`),
/// which CI uses to keep the scalar reference path exercised by the full
/// suite. Read once and cached, like the `HEX_QUEUE` policy default.
pub fn batch_default() -> bool {
    static ENV_DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| match crate::knobs::raw("HEX_BATCH").as_deref() {
        None => true,
        Some("on") | Some("1") | Some("true") => true,
        Some("off") | Some("0") | Some("false") => false,
        Some(v) => panic!("HEX_BATCH must be on or off, got {v:?}"),
    })
}

/// The process-wide default for [`SimConfig::shards`]: 1 (serial),
/// unless the `HEX_SHARDS` env knob names a tile count — which the CI
/// matrix uses (`HEX_SHARDS=4`) to run the whole suite through the
/// sharded engine. Read once and cached, like the `HEX_QUEUE` policy
/// default; malformed or zero values abort with the uniform knob
/// diagnostic.
pub fn shard_default() -> usize {
    static ENV_DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| {
        let shards = crate::knobs::parsed("HEX_SHARDS", "a shard count of 1 or more").unwrap_or(1);
        assert!(
            shards >= 1,
            "HEX_SHARDS must be a shard count of 1 or more, got \"0\""
        );
        shards
    })
}

impl SimConfig {
    /// Fault-free, clean-start configuration with the paper's delay model
    /// and generous timeouts (single-pulse regime).
    pub fn fault_free() -> Self {
        SimConfig {
            delays: DelayModel::paper(),
            timing: Timing::generous(),
            faults: FaultPlan::none(),
            init: InitState::Clean,
            horizon: None,
            record_arrivals: false,
            queue: QueuePolicy::default(),
            batch: batch_default(),
            shards: shard_default(),
            script: None,
        }
    }

    /// Derive a horizon: last scheduled source pulse, plus `depth + faults +
    /// 2` hops at `2·d+` each (Lemma 5's worst-case propagation allowance),
    /// plus two full sleep periods of slack.
    pub fn auto_horizon(&self, graph: &PulseGraph, schedule: &Schedule) -> Time {
        let depth = graph
            .node_ids()
            .filter_map(|n| graph.coord(n))
            .map(|c| c.layer)
            .max()
            .unwrap_or_else(|| (graph.node_count() as f64).sqrt() as u32)
            as i64;
        let last = (0..schedule.pulses())
            .filter_map(|k| schedule.t_max(k))
            .max()
            .unwrap_or(Time::ZERO);
        let d_plus = self.delays.envelope().hi;
        let f = self.faults.fault_count() as i64;
        last + d_plus.times(2 * (depth + f + 2)) + self.timing.sleep.hi.times(2)
    }

    /// The largest increment this configuration ever schedules ahead of
    /// `now`: the slowest delivery, memory timeout or sleep. This is the
    /// calendar queue's ring horizon.
    pub fn max_increment(&self) -> Duration {
        self.delays
            .envelope()
            .hi
            .max(self.timing.link.hi)
            .max(self.timing.sleep.hi)
    }

    /// The smallest increment the event loop ever schedules ahead of `now`:
    /// the fastest delivery, memory timeout or sleep. This is the batch
    /// span of the bucket-draining kernels — while a batch covering
    /// `[first, first + min_increment]` is processed, every event it
    /// schedules lands at or beyond the batch's end (same-instant pushes
    /// get later sequence numbers), so draining the whole batch up front
    /// replays the scalar pop order exactly. Only in-loop scheduling is
    /// constrained: pre-loop pushes (corrupted-init residuals may be
    /// arbitrarily short) all happen before the first batch is drained.
    pub fn min_increment(&self) -> Duration {
        self.delays
            .envelope()
            .lo
            .min(self.timing.link.lo)
            .min(self.timing.sleep.lo)
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    SourceFire {
        node: NodeId,
    },
    Deliver {
        link: u32,
    },
    LinkTimeout {
        node: NodeId,
        port: u8,
        epoch: u32,
    },
    Wake {
        node: NodeId,
        epoch: u32,
    },
    /// Sentinel for `cfg.script.transitions()[index]`: popping it ends the
    /// current fault window. Seeded up-front (one per transition), so the
    /// `(time, seq)` interleaving against regular events is identical on
    /// the scalar and batched paths.
    Script {
        index: u32,
    },
}

impl Ev {
    /// Discriminant for the batched kernel's same-kind run grouping.
    #[inline]
    fn kind(self) -> u8 {
        match self {
            Ev::SourceFire { .. } => 0,
            Ev::Deliver { .. } => 1,
            Ev::LinkTimeout { .. } => 2,
            Ev::Wake { .. } => 3,
            Ev::Script { .. } => 4,
        }
    }
}

/// Where the event handlers *schedule*. Every handler shared between the
/// serial and the sharded engine ([`seed_events`], [`handle_one`],
/// [`apply_transition`] and their callees) only ever pushes — popping is
/// the drivers' business — so their queue bound is this one-method trait
/// rather than the sealed [`FutureEventList`]. The blanket impl covers
/// every real queue; `hex_sim::shard` adds routing sinks that forward
/// each push to the owning tile's queue (which the sealed trait, by
/// design, does not allow it to impersonate).
pub(crate) trait EvSink {
    /// Schedule `ev` at absolute time `t`.
    fn push(&mut self, t: Time, ev: Ev);
}

impl<Q: FutureEventList<Ev>> EvSink for Q {
    #[inline]
    fn push(&mut self, t: Time, ev: Ev) {
        FutureEventList::push(self, t, ev);
    }
}

/// The scratch-resident future event list: one variant per
/// [`QueuePolicy`], selected (and if necessary rebuilt) per run by
/// [`SimScratch::prepare`]. The run loop matches once and monomorphizes.
#[derive(Debug)]
enum FelQueue {
    Binary(EventQueue<Ev>),
    Quad(QuadHeapQueue<Ev>),
    Calendar(CalendarQueue<Ev>),
}

/// The calendar ring geometry for a configuration on an `n`-node graph:
/// bucket count tracks the resident event set (≈ one pending timer per
/// node), one ring lap covers the maximum scheduling increment.
pub(crate) fn calendar_geometry(cfg: &SimConfig, nodes: usize) -> (i64, usize) {
    let (_, nb) = hex_des::calendar::profile_geometry(cfg.max_increment(), nodes);
    let nb_i = nb as i64;
    let env = cfg.delays.envelope();
    // Deliveries are the dense event class (a node broadcasts ~3 per
    // fire), so the width is tuned to them rather than to the slowest
    // timeout: at least one ring lap must cover a whole delivery hop
    // (else every delivery pop degenerates to a full-lap scan), and a
    // hop's jitter ε should spread over ~4 buckets so concurrent
    // deliveries don't pile into one. Sparse far-future timeouts beyond
    // the lap (e.g. the generous 10 µs sleeps of single-pulse runs) just
    // wait out extra laps — measured cheaper than widening the buckets
    // to reach them (see `single_pulse/grid_scratch_calendar`).
    let lap_covers_hop = (env.hi.ps().max(1) + nb_i - 1) / nb_i;
    let jitter_spread = (env.uncertainty().ps() / 4).max(lap_covers_hop);
    let width = (cfg.max_increment().ps().max(1) / nb_i).clamp(lap_covers_hop, jitter_spread);
    (width.max(1), nb)
}

/// Reusable simulation working memory: the event queue, per-node states,
/// the [`Trace`] storage (per-node `fires`/`arrivals` vectors) and the
/// per-run [`RunView`](crate::spec::RunView) output buffers.
///
/// One run of [`simulate_into`] on a dirty scratch is **byte-identical** to
/// [`simulate`] on fresh allocations (pinned by the workspace determinism
/// wall and a property suite): reuse only recycles capacity, never state.
/// The batch paths ([`RunSpec::fold`](crate::spec::RunSpec::fold),
/// [`RunSpec::run_batch`](crate::spec::RunSpec::run_batch)) allocate one
/// scratch per worker thread, so a 250-run sweep performs O(threads) rather
/// than O(runs) trace-sized allocations.
///
/// After a run the scratch also exposes the engine's work counters:
/// [`SimScratch::popped_events`] and [`SimScratch::stale_events`] (the
/// epoch-rejected `LinkTimeout`/`Wake` churn — events popped that bought
/// no state change).
///
/// ```
/// use hex_core::HexGrid;
/// use hex_des::{Schedule, Time};
/// use hex_sim::{simulate, simulate_into, SimConfig, SimScratch};
///
/// let grid = HexGrid::new(6, 5);
/// let sched = Schedule::single_pulse(vec![Time::ZERO; 5]);
/// let cfg = SimConfig::fault_free();
///
/// let mut scratch = SimScratch::new();
/// for seed in 0..4 {
///     let reused = simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed);
///     assert_eq!(reused.fires, simulate(grid.graph(), &sched, &cfg, seed).fires);
///     assert!(scratch.popped_events() > 0);
/// }
/// // All four runs shared one trace-sized allocation.
/// assert_eq!(scratch.grow_count(), 1);
/// ```
#[derive(Debug)]
pub struct SimScratch {
    trace: Trace,
    /// Structure-of-arrays node state ([`SoaNodes`]): both the scalar and
    /// the batched kernels run on the same parallel-vector layout.
    nodes: SoaNodes,
    queue: FelQueue,
    /// The batched kernels' pop buffer ([`FutureEventList::pop_batch`]
    /// drains into it); recycled like every other arena here.
    batch_buf: Vec<(Time, Ev)>,
    /// Per-node `role == Forwarder && !faulty` — the per-event
    /// eligibility test, hoisted out of the loop (a `FaultPlan` probe is
    /// a `BTreeMap` lookup).
    active: Vec<bool>,
    /// Per-node `FaultPlan::is_faulty` bitmask.
    faulty: Vec<bool>,
    /// Spec-level output buffers
    /// ([`RunSpec::run_one_into`](crate::spec::RunSpec::run_one_into)
    /// refills these per run).
    pub(crate) out: crate::spec::RunView,
    /// Observer state of the streaming extraction path
    /// ([`simulate_observed_into`]); its slot buffers are recycled across
    /// runs like every other arena here.
    binner: PulseBinner,
    /// Tile state of the sharded engine (`cfg.shards > 1`): per-tile
    /// queues, node-state copies and mailbox buffers, recycled across
    /// runs like every other arena here. Empty until the first sharded
    /// run through this scratch.
    shard: crate::shard::ShardScratch,
    grows: usize,
    popped_events: u64,
    stale_events: u64,
}

impl Default for SimScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SimScratch {
    /// An empty scratch; buffers are grown on first use and reused after.
    pub fn new() -> Self {
        SimScratch {
            trace: Trace {
                fires: Vec::new(),
                arrivals: Vec::new(),
                faulty: Vec::new(),
                horizon: Time::ZERO,
            },
            nodes: SoaNodes::new(),
            queue: FelQueue::Binary(EventQueue::new()),
            batch_buf: Vec::new(),
            active: Vec::new(),
            faulty: Vec::new(),
            out: crate::spec::RunView::default(),
            binner: PulseBinner::new(),
            shard: crate::shard::ShardScratch::new(),
            grows: 0,
            popped_events: 0,
            stale_events: 0,
        }
    }

    /// The trace of the most recent [`simulate_into`] run. (An observed
    /// run — [`simulate_observed_into`] — records no fires, so after one
    /// this reads as an empty trace.)
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The pulse-binned observer state of the most recent
    /// [`simulate_observed_into`] run.
    pub fn binner(&self) -> &PulseBinner {
        &self.binner
    }

    /// Extract the most recent trace, consuming the scratch.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Extract the most recent observed-run binner, consuming the scratch.
    pub fn into_binner(self) -> PulseBinner {
        self.binner
    }

    /// How many times the trace-sized buffers had to be (re)allocated —
    /// 1 after any number of same-shape runs; grows only when the graph
    /// shape changes under the scratch.
    pub fn grow_count(&self) -> usize {
        self.grows
    }

    /// Events popped by the most recent run (the simulation work metric).
    pub fn popped_events(&self) -> u64 {
        self.popped_events
    }

    /// Events popped by the most recent run that were rejected by their
    /// target's epoch check — stale `LinkTimeout`/`Wake` churn from flags
    /// re-set (or sleeps restarted) after the timeout was scheduled.
    /// Queue work that bought no state change; the `pq` bench reports
    /// this share to justify its hold-model mix.
    pub fn stale_events(&self) -> u64 {
        self.stale_events
    }

    /// Split into the last run's trace and the spec-level output buffers
    /// (both live in the scratch; the borrow checker needs them apart).
    pub(crate) fn trace_and_out(&mut self) -> (&Trace, &mut crate::spec::RunView) {
        (&self.trace, &mut self.out)
    }

    /// Make every buffer observationally identical to a fresh allocation
    /// for `graph` under `cfg`, reusing capacity whenever the shape (and
    /// queue policy) allows.
    fn prepare(&mut self, graph: &PulseGraph, cfg: &SimConfig) {
        let n = graph.node_count();
        let shape_ok = self.trace.fires.len() == n
            && self.trace.arrivals.len() == n
            && self.nodes.matches(graph);
        if shape_ok {
            self.trace.clear();
            self.nodes.reset_clean();
        } else {
            self.grows += 1;
            self.trace = Trace {
                fires: vec![Vec::new(); n],
                arrivals: vec![Vec::new(); n],
                faulty: Vec::new(),
                horizon: Time::ZERO,
            };
            self.nodes.rebuild(graph);
        }

        // Hoist the per-event eligibility checks into bitmasks.
        self.faulty.clear();
        self.faulty.resize(n, false);
        for f in cfg.faults.faulty_nodes() {
            self.faulty[f as usize] = true;
        }
        self.active.clear();
        self.active.resize(n, false);
        for id in graph.node_ids() {
            self.active[id as usize] =
                graph.role(id) == Role::Forwarder && !self.faulty[id as usize];
        }

        // Select the event list for this run's policy, recycling the
        // stored queue when its variant (and, for the calendar, its ring
        // geometry) matches. First-run behavior matches steady-state
        // reuse: the heap-backed lists start sized for the graph instead
        // of growing through the run.
        let prev = std::mem::replace(&mut self.queue, FelQueue::Binary(EventQueue::new()));
        self.queue = match (cfg.queue, prev) {
            (QueuePolicy::BinaryHeap, FelQueue::Binary(mut q)) => {
                q.clear();
                q.reserve(n);
                FelQueue::Binary(q)
            }
            (QueuePolicy::BinaryHeap, _) => FelQueue::Binary(EventQueue::with_capacity(n)),
            (QueuePolicy::QuadHeap, FelQueue::Quad(mut q)) => {
                q.clear();
                q.reserve(n);
                FelQueue::Quad(q)
            }
            (QueuePolicy::QuadHeap, _) => FelQueue::Quad(QuadHeapQueue::with_capacity(n)),
            (QueuePolicy::Calendar, prev) => {
                let (width, buckets) = calendar_geometry(cfg, n);
                match prev {
                    FelQueue::Calendar(mut q)
                        if q.bucket_width() == width && q.bucket_count() == buckets =>
                    {
                        q.clear();
                        FelQueue::Calendar(q)
                    }
                    _ => FelQueue::Calendar(CalendarQueue::with_geometry(
                        Duration::from_ps(width),
                        buckets,
                    )),
                }
            }
        };
        self.popped_events = 0;
        self.stale_events = 0;
    }
}

/// Run one simulation of `graph` driven by `schedule` (one entry per source
/// node, in [`PulseGraph::source_ids`] order) under `cfg`, seeded by `seed`.
///
/// Returns the full [`Trace`]: per node, the list of firing times with
/// their trigger causes. Faulty nodes never record fires.
///
/// This is a thin fresh-scratch wrapper over [`simulate_into`]; batch
/// drivers that run many simulations reuse one [`SimScratch`] instead.
///
/// # Panics
///
/// Panics if the schedule's source count does not match the graph's.
pub fn simulate(graph: &PulseGraph, schedule: &Schedule, cfg: &SimConfig, seed: u64) -> Trace {
    let mut scratch = SimScratch::new();
    simulate_into(&mut scratch, graph, schedule, cfg, seed);
    scratch.into_trace()
}

/// Read-only per-run context shared by the event loop and its helpers.
/// Everything per-event-resolvable at setup lives here, resolved: the
/// eligibility bitmasks replace `FaultPlan` probes and `role` calls, and
/// `all_links_correct` lets [`broadcast`] skip the behaviors table in the
/// fault-free common case.
pub(crate) struct RunCtx<'a> {
    pub(crate) graph: &'a PulseGraph,
    pub(crate) cfg: &'a SimConfig,
    pub(crate) behaviors: &'a [LinkBehavior],
    pub(crate) delays: &'a ResolvedDelays,
    /// `role == Forwarder && !faulty`, per node.
    pub(crate) active: &'a [bool],
    /// `FaultPlan::is_faulty`, per node.
    pub(crate) faulty: &'a [bool],
    /// No faulty node and no link override anywhere.
    pub(crate) all_links_correct: bool,
    pub(crate) horizon: Time,
}

/// Everything a run derives before the event loop, in the one canonical
/// order. The RNG draw sequence — delays resolved first, fault behaviors
/// second — is part of the byte-equality contract between the trace and
/// observer entry points, so it lives in exactly one place.
pub(crate) struct RunSetup {
    pub(crate) sources: Vec<NodeId>,
    pub(crate) rng: SimRng,
    pub(crate) delays: ResolvedDelays,
    pub(crate) behaviors: Vec<LinkBehavior>,
    pub(crate) horizon: Time,
    /// The script RNG stream (`seed ^ SCRIPT_SALT`); only ever drawn from
    /// while applying a [`FaultTransition`].
    pub(crate) script_rng: SimRng,
    /// Setup-resolved copy of `behaviors`, the restore table for
    /// `Heal`/`LinkUp` transitions. Empty when the run has no script.
    pub(crate) base_behaviors: Vec<LinkBehavior>,
}

/// # Panics
///
/// Panics if the schedule's source count does not match the graph's.
fn prepare_run(graph: &PulseGraph, schedule: &Schedule, cfg: &SimConfig, seed: u64) -> RunSetup {
    let sources: Vec<NodeId> = graph.source_ids().collect();
    assert_eq!(
        sources.len(),
        schedule.sources(),
        "schedule has {} sources, graph has {}",
        schedule.sources(),
        sources.len()
    );
    let mut rng = SimRng::seed_from_u64(seed);
    let delays = cfg.delays.resolve(graph, &mut rng);
    let behaviors = cfg.faults.resolve(graph, &mut rng);
    let horizon = cfg
        .horizon
        .unwrap_or_else(|| cfg.auto_horizon(graph, schedule));
    let base_behaviors = match &cfg.script {
        Some(script) if !script.is_empty() => {
            script.assert_in_bounds(graph.node_count(), graph.link_count());
            behaviors.clone()
        }
        _ => Vec::new(),
    };
    RunSetup {
        sources,
        rng,
        delays,
        behaviors,
        horizon,
        script_rng: SimRng::seed_from_u64(seed ^ SCRIPT_SALT),
        base_behaviors,
    }
}

/// Build the run context and drain the whole event list through the
/// queue-policy match: the single observer-generic core behind both
/// [`simulate_into`] and [`simulate_observed_into`]. One match per run
/// (queue policy × scalar/batched), zero per-event dispatch on any axis.
#[allow(clippy::too_many_arguments)]
fn drive<O: RunObserver>(
    setup: &mut RunSetup,
    graph: &PulseGraph,
    cfg: &SimConfig,
    schedule: &Schedule,
    queue: &mut FelQueue,
    nodes: &mut SoaNodes,
    active: &mut [bool],
    faulty: &mut [bool],
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    batch_buf: &mut Vec<(Time, Ev)>,
    shard: &mut crate::shard::ShardScratch,
) -> (u64, u64) {
    if cfg.shards > 1 {
        // The sharded engine seeds through a routing sink straight into
        // the tile queues; the master event list stays empty.
        return crate::shard::drive_sharded(
            setup, graph, cfg, schedule, shard, nodes, active, faulty, obs, arrivals,
        );
    }
    let scripted = cfg.script.as_ref().is_some_and(|s| !s.is_empty());
    macro_rules! drain {
        ($q:expr) => {
            if scripted {
                if cfg.batch {
                    run_events_scripted_batched(
                        $q, setup, graph, cfg, schedule, nodes, active, faulty, obs, arrivals,
                        batch_buf,
                    )
                } else {
                    run_events_scripted(
                        $q, setup, graph, cfg, schedule, nodes, active, faulty, obs, arrivals,
                    )
                }
            } else {
                let ctx = RunCtx {
                    graph,
                    cfg,
                    behaviors: &setup.behaviors,
                    delays: &setup.delays,
                    active,
                    faulty,
                    all_links_correct: setup.behaviors.iter().all(|&b| b == LinkBehavior::Correct),
                    horizon: setup.horizon,
                };
                if cfg.batch {
                    run_events_batched(
                        $q,
                        &ctx,
                        schedule,
                        &setup.sources,
                        nodes,
                        obs,
                        arrivals,
                        &mut setup.rng,
                        batch_buf,
                    )
                } else {
                    run_events(
                        $q,
                        &ctx,
                        schedule,
                        &setup.sources,
                        nodes,
                        obs,
                        arrivals,
                        &mut setup.rng,
                    )
                }
            }
        };
    }
    match queue {
        FelQueue::Binary(q) => drain!(q),
        FelQueue::Quad(q) => drain!(q),
        FelQueue::Calendar(q) => drain!(q),
    }
}

/// Run one simulation into `scratch`, recycling its event queue, node
/// states and trace storage, and return the recorded trace (borrowed from
/// the scratch, which stays reusable for the next run).
///
/// The result is byte-identical to [`simulate`] with the same arguments,
/// no matter what ran through the scratch before — and no matter which
/// [`QueuePolicy`] either run used.
///
/// # Panics
///
/// Panics if the schedule's source count does not match the graph's.
pub fn simulate_into<'s>(
    scratch: &'s mut SimScratch,
    graph: &PulseGraph,
    schedule: &Schedule,
    cfg: &SimConfig,
    seed: u64,
) -> &'s Trace {
    let mut setup = prepare_run(graph, schedule, cfg, seed);
    scratch.prepare(graph, cfg);
    let SimScratch {
        trace,
        nodes,
        queue,
        batch_buf,
        active,
        faulty,
        shard,
        ..
    } = scratch;
    let Trace {
        fires, arrivals, ..
    } = trace;
    let mut obs = FireLog { fires };
    let (popped, stale) = drive(
        &mut setup, graph, cfg, schedule, queue, nodes, active, faulty, &mut obs, arrivals,
        batch_buf, shard,
    );

    trace.faulty = cfg.faults.faulty_nodes();
    trace.horizon = setup.horizon;
    scratch.popped_events = popped;
    scratch.stale_events = stale;
    &scratch.trace
}

/// Run one simulation into `scratch`, streaming every firing into the
/// scratch's [`PulseBinner`] instead of recording a trace: skew and
/// stabilization statistics can then be extracted straight from the
/// binner's per-pulse slots — no [`Trace`] fires, no
/// [`PulseView`](crate::PulseView) matrices, no second pass.
///
/// The binner's contents are **identical** to running [`simulate_into`]
/// and post-processing the trace with
/// [`assign_pulses`](crate::assign_pulses) (or
/// [`PulseView::from_single_pulse`](crate::PulseView::from_single_pulse)
/// for single-pulse schedules) with the same `d_mid` — pinned by the
/// observer-equivalence walls across queue policies and thread counts.
/// The scratch stays reusable for either path afterwards.
///
/// # Panics
///
/// Panics if the schedule's source count does not match the graph's.
pub fn simulate_observed_into<'s>(
    scratch: &'s mut SimScratch,
    grid: &HexGrid,
    schedule: &Schedule,
    cfg: &SimConfig,
    seed: u64,
    d_mid: Duration,
) -> &'s PulseBinner {
    let graph = grid.graph();
    let mut setup = prepare_run(graph, schedule, cfg, seed);
    scratch.prepare(graph, cfg);
    let SimScratch {
        trace,
        nodes,
        queue,
        batch_buf,
        active,
        faulty,
        binner,
        shard,
        ..
    } = scratch;
    binner.prepare(grid, schedule, d_mid, &cfg.faults.faulty_nodes());
    let arrivals = &mut trace.arrivals;
    let (popped, stale) = drive(
        &mut setup, graph, cfg, schedule, queue, nodes, active, faulty, binner, arrivals,
        batch_buf, shard,
    );

    scratch.popped_events = popped;
    scratch.stale_events = stale;
    &scratch.binner
}

/// Schedule everything that exists before the first event pops: source
/// pulses, corrupted-init states with their residual timeouts, stuck-at-1
/// port assertions and the time-0 guard sweep. Shared verbatim by the
/// scalar and batched kernels — the pre-loop RNG draw order is part of
/// their byte-equality contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn seed_events<Q: EvSink, O: RunObserver>(
    q: &mut Q,
    ctx: &RunCtx<'_>,
    schedule: &Schedule,
    sources: &[NodeId],
    nodes: &mut SoaNodes,
    obs: &mut O,
    rng: &mut SimRng,
) {
    let graph = ctx.graph;
    let cfg = ctx.cfg;

    // Schedule all source pulses.
    for (ix, &node) in sources.iter().enumerate() {
        for &t in schedule.source(ix) {
            q.push(t, Ev::SourceFire { node });
        }
    }

    // Corrupted initial states (self-stabilization experiments).
    if cfg.init != InitState::Clean {
        for n in graph.node_ids() {
            if !ctx.active[n as usize] {
                continue;
            }
            let ports = graph.port_count(n);
            let (sleeping, set): (bool, Vec<u8>) = match cfg.init {
                InitState::Arbitrary => (
                    rng.coin(),
                    (0..ports as u8).filter(|_| rng.coin()).collect(),
                ),
                InitState::AllFlagsSet => (false, (0..ports as u8).collect()),
                InitState::AllAsleep => (true, Vec::new()),
                InitState::Clean => unreachable!(),
            };
            let eps = nodes.force_arbitrary(n, sleeping, &set);
            if let Some(e) = eps.sleep_epoch {
                let residual = match cfg.init {
                    InitState::Arbitrary => rng.duration_in(Duration::ZERO, cfg.timing.sleep.hi),
                    _ => cfg.timing.sleep.hi,
                };
                q.push(Time::ZERO + residual, Ev::Wake { node: n, epoch: e });
            }
            for (port, e) in eps.flag_epochs {
                let residual = match cfg.init {
                    InitState::Arbitrary => rng.duration_in(Duration::ZERO, cfg.timing.link.hi),
                    _ => rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi),
                };
                q.push(
                    Time::ZERO + residual,
                    Ev::LinkTimeout {
                        node: n,
                        port,
                        epoch: e,
                    },
                );
            }
        }
    }

    // Stuck-at-1 in-ports assert themselves from the start.
    for n in graph.node_ids() {
        if !ctx.active[n as usize] {
            continue;
        }
        for (port, &l) in graph.in_links(n).iter().enumerate() {
            if ctx.behaviors[l as usize] == LinkBehavior::StuckOne {
                if let Some(epoch) = nodes.set_flag(n, port as u8) {
                    let dur = rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi);
                    q.push(
                        Time::ZERO + dur,
                        Ev::LinkTimeout {
                            node: n,
                            port: port as u8,
                            epoch,
                        },
                    );
                }
            }
        }
    }

    // Nodes whose guards are satisfied by the initial flag assignment fire
    // immediately (time 0).
    for n in graph.node_ids() {
        if ctx.active[n as usize] {
            maybe_fire::<Q, O, false>(n, Time::ZERO, ctx, nodes, obs, q, rng);
        }
    }

    // One sentinel per scripted fault transition, pushed after everything
    // else: at equal timestamps, seed-time events apply before the
    // transition and in-loop events after it, identically on the scalar
    // and batched paths.
    if let Some(script) = &cfg.script {
        for (index, tr) in script.transitions().iter().enumerate() {
            q.push(
                tr.at,
                Ev::Script {
                    index: index as u32,
                },
            );
        }
    }
}

/// Schedule the initial events and drain the queue one event at a time:
/// the scalar reference kernel. Firing records flow through `obs` — the
/// [`FireLog`] of the trace path or the [`PulseBinner`] of the streaming
/// path; both the queue and the observer are monomorphized, so the loop
/// pays no per-event dispatch for either axis. Returns `(events popped,
/// stale epoch-rejected events)`.
#[allow(clippy::too_many_arguments)]
fn run_events<Q: FutureEventList<Ev>, O: RunObserver>(
    q: &mut Q,
    ctx: &RunCtx<'_>,
    schedule: &Schedule,
    sources: &[NodeId],
    nodes: &mut SoaNodes,
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    rng: &mut SimRng,
) -> (u64, u64) {
    seed_events(q, ctx, schedule, sources, nodes, obs, rng);

    // Main loop.
    let mut stale = 0u64;
    while let Some((now, payload)) = q.pop_next() {
        if now > ctx.horizon {
            break;
        }
        match handle_one::<Q, O, false>(now, payload, ctx, nodes, obs, arrivals, q, rng) {
            Step::Done => {}
            Step::Stale => stale += 1,
            Step::Script(_) => unreachable!("script sentinel in an unscripted run"),
        }
    }

    (q.popped(), stale)
}

/// What one scalar event dispatch did: nothing reportable, a stale
/// epoch-rejected pop, or a scripted-fault sentinel (ending the window).
pub(crate) enum Step {
    Done,
    Stale,
    Script(u32),
}

/// Dispatch one popped event under the current context — the shared arm
/// bodies of the scalar reference loop, the scripted window loop and the
/// batched path's window-boundary replay. `DYNAMIC` adds the
/// currently-faulty guard on `LinkTimeout`/`Wake` (a scripted fault must
/// silence its victim's pending timers); it is compiled out of static
/// runs, where an inactive node can never own a timer in the first place.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn handle_one<Q: EvSink, O: RunObserver, const DYNAMIC: bool>(
    now: Time,
    payload: Ev,
    ctx: &RunCtx<'_>,
    nodes: &mut SoaNodes,
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    q: &mut Q,
    rng: &mut SimRng,
) -> Step {
    let graph = ctx.graph;
    let cfg = ctx.cfg;
    match payload {
        Ev::SourceFire { node } => {
            if ctx.faulty[node as usize] {
                return Step::Done; // mute/Byzantine source: outputs are constants
            }
            obs.on_fire(node, now, TriggerCause::Source);
            broadcast::<Q, false>(node, now, ctx, q, rng);
        }
        Ev::Deliver { link } => {
            let l = graph.link(link);
            let n = l.dst;
            if !ctx.active[n as usize] {
                return Step::Done;
            }
            if let Some(epoch) = nodes.set_flag(n, l.dst_port) {
                if cfg.record_arrivals {
                    arrivals[n as usize].push(Arrival {
                        at: now,
                        from: l.src,
                        port: l.dst_port,
                    });
                }
                let dur = rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi);
                q.push(
                    now + dur,
                    Ev::LinkTimeout {
                        node: n,
                        port: l.dst_port,
                        epoch,
                    },
                );
                maybe_fire::<Q, O, false>(n, now, ctx, nodes, obs, q, rng);
            }
        }
        Ev::LinkTimeout { node, port, epoch } => {
            if DYNAMIC && !ctx.active[node as usize] {
                return Step::Stale; // timer owned by a currently-faulty node
            }
            // Epoch bound: a timeout can carry at most the epoch it
            // was scheduled under, and epochs only move forward — a
            // popped epoch from the future means timer-cancellation
            // bookkeeping is corrupt (the dynamic twin of the
            // hex-lint determinism rules).
            debug_assert!(
                epoch <= nodes.flag_epoch(node, port),
                "LinkTimeout from the future: node {node} port {port} \
                 carries epoch {epoch} > current {}",
                nodes.flag_epoch(node, port)
            );
            if nodes.expire_flag(node, port, epoch) {
                refresh_stuck_one(node, port, now, ctx, nodes, q, rng);
                maybe_fire::<Q, O, false>(node, now, ctx, nodes, obs, q, rng);
            } else {
                return Step::Stale;
            }
        }
        Ev::Wake { node, epoch } => {
            if DYNAMIC && !ctx.active[node as usize] {
                return Step::Stale; // timer owned by a currently-faulty node
            }
            debug_assert!(
                epoch <= nodes.sleep_epoch(node),
                "Wake from the future: node {node} carries epoch {epoch} > current {}",
                nodes.sleep_epoch(node)
            );
            if nodes.wake(node, epoch) {
                // All flags were cleared; stuck-1 ports re-assert.
                for port in 0..graph.port_count(node) as u8 {
                    refresh_stuck_one(node, port, now, ctx, nodes, q, rng);
                }
                maybe_fire::<Q, O, false>(node, now, ctx, nodes, obs, q, rng);
            } else {
                return Step::Stale;
            }
        }
        Ev::Script { index } => return Step::Script(index),
    }
    Step::Done
}

/// The scripted scalar driver: the reference loop of [`run_events`], run
/// window by window. Popping a [`Ev::Script`] sentinel ends the current
/// window; the transition is applied (masks, behaviours, SoA state — see
/// [`apply_transition`]) and the next window rebuilds its [`RunCtx`] with
/// the updated `all_links_correct` hoist. Returns `(events popped, stale
/// epoch-rejected events)`.
#[allow(clippy::too_many_arguments)]
fn run_events_scripted<Q: FutureEventList<Ev>, O: RunObserver>(
    q: &mut Q,
    setup: &mut RunSetup,
    graph: &PulseGraph,
    cfg: &SimConfig,
    schedule: &Schedule,
    nodes: &mut SoaNodes,
    active: &mut [bool],
    faulty: &mut [bool],
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
) -> (u64, u64) {
    let script = cfg.script.as_ref().expect("scripted driver needs a script");
    let mut stale = 0u64;
    let mut seeded = false;
    'windows: loop {
        let ctx = RunCtx {
            graph,
            cfg,
            behaviors: &setup.behaviors,
            delays: &setup.delays,
            active,
            faulty,
            all_links_correct: setup.behaviors.iter().all(|&b| b == LinkBehavior::Correct),
            horizon: setup.horizon,
        };
        if !seeded {
            seed_events(
                q,
                &ctx,
                schedule,
                &setup.sources,
                nodes,
                obs,
                &mut setup.rng,
            );
            seeded = true;
        }
        let mut pending: Option<u32> = None;
        while let Some((now, payload)) = q.pop_next() {
            if now > ctx.horizon {
                break 'windows; // beyond-horizon event consumed, like run_events
            }
            match handle_one::<Q, O, true>(
                now,
                payload,
                &ctx,
                nodes,
                obs,
                arrivals,
                q,
                &mut setup.rng,
            ) {
                Step::Done => {}
                Step::Stale => stale += 1,
                Step::Script(index) => {
                    pending = Some(index);
                    break;
                }
            }
        }
        match pending {
            Some(index) => apply_transition(
                q,
                script.transitions()[index as usize],
                graph,
                cfg,
                nodes,
                active,
                faulty,
                setup,
                obs,
            ),
            None => break, // queue fully drained
        }
    }
    (q.popped(), stale)
}

/// Schedule the initial events and drain the queue in bucket batches: the
/// batched kernel behind [`SimConfig::batch`]. [`FutureEventList::pop_batch`]
/// drains a span-bounded prefix of the pop sequence into `batch_buf`, and
/// the events are processed as branch-light same-kind runs against the SoA
/// node arrays. Byte-identical to [`run_events`] — same processing order,
/// same RNG stream, same pop counters — because the batch span is
/// [`SimConfig::min_increment`]: nothing processed inside a batch can
/// schedule back into it.
///
/// The per-event `active`/`faulty` bitmask probes of the scalar loop are
/// promoted to one whole-run mask test: when no node is faulty, every link
/// behaves and every delivery targets an active forwarder, the entire drain
/// runs through a `FAULT_FREE`-monomorphized kernel with no fault or role
/// checks at all (and the stuck-at-1 refresh compiled out).
#[allow(clippy::too_many_arguments)]
fn run_events_batched<Q: FutureEventList<Ev>, O: RunObserver>(
    q: &mut Q,
    ctx: &RunCtx<'_>,
    schedule: &Schedule,
    sources: &[NodeId],
    nodes: &mut SoaNodes,
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    rng: &mut SimRng,
    batch_buf: &mut Vec<(Time, Ev)>,
) -> (u64, u64) {
    seed_events(q, ctx, schedule, sources, nodes, obs, rng);
    let stale = if batch_fault_free(ctx) {
        drain_batches::<Q, O, true>(q, ctx, ctx.horizon, nodes, obs, arrivals, rng, batch_buf)
    } else {
        drain_batches::<Q, O, false>(q, ctx, ctx.horizon, nodes, obs, arrivals, rng, batch_buf)
    };
    // The scalar loop pops the first beyond-horizon event before breaking;
    // mirror it so `popped()` stays byte-identical.
    if !q.is_empty() {
        q.pop_next();
    }
    (q.popped(), stale)
}

/// Can the whole drain (or, scripted, the current window) run through the
/// `FAULT_FREE`-monomorphized kernel? True iff no node is faulty, every
/// link behaves and every delivery targets an active forwarder.
fn batch_fault_free(ctx: &RunCtx<'_>) -> bool {
    let graph = ctx.graph;
    ctx.all_links_correct
        && ctx.faulty.iter().all(|&f| !f)
        && (0..graph.link_count() as u32).all(|l| ctx.active[graph.link(l).dst as usize])
}

/// The scripted batched driver: drains span-bounded batches **capped one
/// picosecond short of the next fault transition**, so a whole window runs
/// through the batch kernel — `FAULT_FREE`-monomorphized whenever the
/// window is actually fault-free, demoted to the masked kernel only while
/// a fault is live. At the window boundary the loop replays events one at
/// a time (identical arm bodies via [`handle_one`]) until the sentinel
/// pops, applies the transition, and re-hoists the masks for the next
/// window. Byte-identical to [`run_events_scripted`].
#[allow(clippy::too_many_arguments)]
fn run_events_scripted_batched<Q: FutureEventList<Ev>, O: RunObserver>(
    q: &mut Q,
    setup: &mut RunSetup,
    graph: &PulseGraph,
    cfg: &SimConfig,
    schedule: &Schedule,
    nodes: &mut SoaNodes,
    active: &mut [bool],
    faulty: &mut [bool],
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    batch_buf: &mut Vec<(Time, Ev)>,
) -> (u64, u64) {
    let script = cfg.script.as_ref().expect("scripted driver needs a script");
    let transitions = script.transitions();
    let mut next_tr = 0usize;
    let mut stale = 0u64;
    let mut seeded = false;
    'windows: loop {
        let ctx = RunCtx {
            graph,
            cfg,
            behaviors: &setup.behaviors,
            delays: &setup.delays,
            active,
            faulty,
            all_links_correct: setup.behaviors.iter().all(|&b| b == LinkBehavior::Correct),
            horizon: setup.horizon,
        };
        if !seeded {
            seed_events(
                q,
                &ctx,
                schedule,
                &setup.sources,
                nodes,
                obs,
                &mut setup.rng,
            );
            seeded = true;
        }
        // Batches must stop strictly before the next transition: the
        // sentinel (and everything at its timestamp) is replayed through
        // the scalar boundary loop below, preserving exact pop order.
        let window_ends = next_tr < transitions.len() && transitions[next_tr].at <= ctx.horizon;
        let cap = if window_ends {
            Time::from_ps(transitions[next_tr].at.ps() - 1)
        } else {
            ctx.horizon
        };
        stale += if batch_fault_free(&ctx) {
            drain_batches::<Q, O, true>(
                q,
                &ctx,
                cap,
                nodes,
                obs,
                arrivals,
                &mut setup.rng,
                batch_buf,
            )
        } else {
            drain_batches::<Q, O, false>(
                q,
                &ctx,
                cap,
                nodes,
                obs,
                arrivals,
                &mut setup.rng,
                batch_buf,
            )
        };
        if !window_ends {
            // Final window: mirror the scalar loop's single beyond-horizon
            // pop so `popped()` stays byte-identical.
            if !q.is_empty() {
                q.pop_next();
            }
            break;
        }
        // Window boundary: replay same-timestamp events individually until
        // the sentinel pops (they precede it in `(time, seq)` order).
        let mut pending: Option<u32> = None;
        while let Some((now, payload)) = q.pop_next() {
            if now > ctx.horizon {
                break 'windows; // beyond-horizon event consumed, like the scalar path
            }
            match handle_one::<Q, O, true>(
                now,
                payload,
                &ctx,
                nodes,
                obs,
                arrivals,
                q,
                &mut setup.rng,
            ) {
                Step::Done => {}
                Step::Stale => stale += 1,
                Step::Script(index) => {
                    pending = Some(index);
                    break;
                }
            }
        }
        match pending {
            Some(index) => {
                debug_assert_eq!(index as usize, next_tr, "sentinels pop in timeline order");
                apply_transition(
                    q,
                    transitions[index as usize],
                    graph,
                    cfg,
                    nodes,
                    active,
                    faulty,
                    setup,
                    obs,
                );
                next_tr = index as usize + 1;
            }
            None => break, // queue fully drained (unreachable: sentinel still queued)
        }
    }
    (q.popped(), stale)
}

/// The batch-draining loop of [`run_events_batched`], monomorphized over
/// the fault-free fast path. Returns the stale-event count.
#[allow(clippy::too_many_arguments)]
fn drain_batches<Q: FutureEventList<Ev>, O: RunObserver, const FAULT_FREE: bool>(
    q: &mut Q,
    ctx: &RunCtx<'_>,
    cap: Time,
    nodes: &mut SoaNodes,
    obs: &mut O,
    arrivals: &mut [Vec<Arrival>],
    rng: &mut SimRng,
    batch: &mut Vec<(Time, Ev)>,
) -> u64 {
    let graph = ctx.graph;
    let cfg = ctx.cfg;
    let record_arrivals = cfg.record_arrivals;
    let span = cfg.min_increment();
    let mut stale = 0u64;
    while q.pop_batch(span, cap, batch) > 0 {
        // Sort-free same-kind grouping: the batch is already in (time, seq)
        // pop order; split it into maximal consecutive runs of one event
        // kind and dispatch each run with a single match. Order within and
        // across runs is untouched, so the replay stays exact.
        let mut i = 0;
        while i < batch.len() {
            let kind = batch[i].1.kind();
            let mut j = i + 1;
            while j < batch.len() && batch[j].1.kind() == kind {
                j += 1;
            }
            match kind {
                0 => {
                    for &(now, ev) in &batch[i..j] {
                        let Ev::SourceFire { node } = ev else {
                            unreachable!()
                        };
                        if !FAULT_FREE && ctx.faulty[node as usize] {
                            continue; // mute/Byzantine source
                        }
                        obs.on_fire(node, now, TriggerCause::Source);
                        broadcast::<Q, FAULT_FREE>(node, now, ctx, q, rng);
                    }
                }
                1 => {
                    for &(now, ev) in &batch[i..j] {
                        let Ev::Deliver { link } = ev else {
                            unreachable!()
                        };
                        let l = graph.link(link);
                        let n = l.dst;
                        if !FAULT_FREE && !ctx.active[n as usize] {
                            continue;
                        }
                        if let Some(epoch) = nodes.set_flag(n, l.dst_port) {
                            if record_arrivals {
                                arrivals[n as usize].push(Arrival {
                                    at: now,
                                    from: l.src,
                                    port: l.dst_port,
                                });
                            }
                            let dur = rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi);
                            EvSink::push(
                                q,
                                now + dur,
                                Ev::LinkTimeout {
                                    node: n,
                                    port: l.dst_port,
                                    epoch,
                                },
                            );
                            maybe_fire::<Q, O, FAULT_FREE>(n, now, ctx, nodes, obs, q, rng);
                        }
                    }
                }
                2 => {
                    for &(now, ev) in &batch[i..j] {
                        let Ev::LinkTimeout { node, port, epoch } = ev else {
                            unreachable!()
                        };
                        if !FAULT_FREE && !ctx.active[node as usize] {
                            stale += 1; // timer owned by a currently-faulty node
                            continue;
                        }
                        debug_assert!(
                            epoch <= nodes.flag_epoch(node, port),
                            "LinkTimeout from the future: node {node} port {port} \
                             carries epoch {epoch} > current {}",
                            nodes.flag_epoch(node, port)
                        );
                        if nodes.expire_flag(node, port, epoch) {
                            if !FAULT_FREE {
                                refresh_stuck_one(node, port, now, ctx, nodes, q, rng);
                            }
                            maybe_fire::<Q, O, FAULT_FREE>(node, now, ctx, nodes, obs, q, rng);
                        } else {
                            stale += 1;
                        }
                    }
                }
                _ => {
                    for &(now, ev) in &batch[i..j] {
                        let Ev::Wake { node, epoch } = ev else {
                            unreachable!()
                        };
                        if !FAULT_FREE && !ctx.active[node as usize] {
                            stale += 1; // timer owned by a currently-faulty node
                            continue;
                        }
                        debug_assert!(
                            epoch <= nodes.sleep_epoch(node),
                            "Wake from the future: node {node} carries epoch {epoch} > current {}",
                            nodes.sleep_epoch(node)
                        );
                        if nodes.wake(node, epoch) {
                            if !FAULT_FREE {
                                // All flags were cleared; stuck-1 re-asserts.
                                for port in 0..graph.port_count(node) as u8 {
                                    refresh_stuck_one(node, port, now, ctx, nodes, q, rng);
                                }
                            }
                            maybe_fire::<Q, O, FAULT_FREE>(node, now, ctx, nodes, obs, q, rng);
                        } else {
                            stale += 1;
                        }
                    }
                }
            }
            i = j;
        }
    }
    stale
}

/// Apply one scripted [`FaultTransition`] at its scheduled instant: flip
/// the hoisted `active`/`faulty` bitmasks, rewrite the affected link
/// behaviours, and mutate the SoA node state. All randomness (Byzantine
/// link draws, arbitrary-rejoin states, residual timers, any fires the
/// transition itself provokes) comes from `setup.script_rng`, so the main
/// per-run stream is untouched.
///
/// Every event this pushes lands at `tr.at + positive duration`, i.e. at
/// or after the last popped timestamp — no past-push, and identical
/// `(time, seq)` interleaving on the scalar and batched paths (both call
/// this at the exact same point of the pop sequence).
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_transition<Q: EvSink, O: RunObserver>(
    q: &mut Q,
    tr: FaultTransition,
    graph: &PulseGraph,
    cfg: &SimConfig,
    nodes: &mut SoaNodes,
    active: &mut [bool],
    faulty: &mut [bool],
    setup: &mut RunSetup,
    obs: &mut O,
) {
    let now = tr.at;

    // Phase 1: rewrite masks, behaviours and local state.
    match tr.event {
        FaultEvent::Fail(node, fault) => {
            faulty[node as usize] = true;
            active[node as usize] = false;
            for &l in graph.out_links(node) {
                setup.behaviors[l as usize] = match fault {
                    NodeFault::FailSilent => LinkBehavior::StuckZero,
                    NodeFault::Byzantine => {
                        if setup.script_rng.coin() {
                            LinkBehavior::StuckOne
                        } else {
                            LinkBehavior::StuckZero
                        }
                    }
                };
            }
        }
        FaultEvent::Heal(node, rejoin) => {
            faulty[node as usize] = false;
            active[node as usize] = graph.role(node) == Role::Forwarder;
            for &l in graph.out_links(node) {
                setup.behaviors[l as usize] = setup.base_behaviors[l as usize];
            }
            match rejoin {
                RejoinState::Clean => {
                    // Epoch-bumping reset: awake, flags cleared, every
                    // pending timer from before the fault invalidated.
                    nodes.force_arbitrary(node, false, &[]);
                }
                RejoinState::Arbitrary => {
                    // Mirror the corrupted-init seeding, drawn from the
                    // script stream.
                    let ports = graph.port_count(node);
                    let sleeping = setup.script_rng.coin();
                    let set: Vec<u8> = (0..ports as u8)
                        .filter(|_| setup.script_rng.coin())
                        .collect();
                    let eps = nodes.force_arbitrary(node, sleeping, &set);
                    if let Some(e) = eps.sleep_epoch {
                        let residual = setup
                            .script_rng
                            .duration_in(Duration::ZERO, cfg.timing.sleep.hi);
                        q.push(now + residual, Ev::Wake { node, epoch: e });
                    }
                    for (port, e) in eps.flag_epochs {
                        let residual = setup
                            .script_rng
                            .duration_in(Duration::ZERO, cfg.timing.link.hi);
                        q.push(
                            now + residual,
                            Ev::LinkTimeout {
                                node,
                                port,
                                epoch: e,
                            },
                        );
                    }
                }
            }
        }
        FaultEvent::LinkDown(link, behavior) => {
            setup.behaviors[link as usize] = behavior;
        }
        FaultEvent::LinkUp(link) => {
            setup.behaviors[link as usize] = setup.base_behaviors[link as usize];
        }
    }

    // Phase 2: react under the updated context — stuck-at-1 links assert
    // their receiver's port, and affected ready nodes may fire.
    let ctx = RunCtx {
        graph,
        cfg,
        behaviors: &setup.behaviors,
        delays: &setup.delays,
        active,
        faulty,
        all_links_correct: setup.behaviors.iter().all(|&b| b == LinkBehavior::Correct),
        horizon: setup.horizon,
    };
    let rng = &mut setup.script_rng;
    let single;
    let links: &[u32] = match tr.event {
        FaultEvent::Fail(node, _) | FaultEvent::Heal(node, _) => graph.out_links(node),
        FaultEvent::LinkDown(link, _) | FaultEvent::LinkUp(link) => {
            single = [link];
            &single
        }
    };
    for &l in links {
        if ctx.behaviors[l as usize] != LinkBehavior::StuckOne {
            continue;
        }
        let lk = graph.link(l);
        if !ctx.active[lk.dst as usize] {
            continue;
        }
        if let Some(epoch) = nodes.set_flag(lk.dst, lk.dst_port) {
            let dur = rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi);
            q.push(
                now + dur,
                Ev::LinkTimeout {
                    node: lk.dst,
                    port: lk.dst_port,
                    epoch,
                },
            );
        }
        maybe_fire::<Q, O, false>(lk.dst, now, &ctx, nodes, obs, q, rng);
    }

    // A healed node re-arms its stuck-at-1 in-ports (still-faulty
    // neighbours, link overrides) and may fire off its rejoin state.
    if let FaultEvent::Heal(node, _) = tr.event {
        for (port, &l) in graph.in_links(node).iter().enumerate() {
            if ctx.behaviors[l as usize] == LinkBehavior::StuckOne {
                if let Some(epoch) = nodes.set_flag(node, port as u8) {
                    let dur = rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi);
                    q.push(
                        now + dur,
                        Ev::LinkTimeout {
                            node,
                            port: port as u8,
                            epoch,
                        },
                    );
                }
            }
        }
        if ctx.active[node as usize] {
            maybe_fire::<Q, O, false>(node, now, &ctx, nodes, obs, q, rng);
        }
    }
}

/// If `node` is ready and its guard is satisfied, fire: observe the firing
/// record, broadcast, sleep. `FAULT_FREE` only forwards to [`broadcast`].
fn maybe_fire<Q: EvSink, O: RunObserver, const FAULT_FREE: bool>(
    node: NodeId,
    now: Time,
    ctx: &RunCtx<'_>,
    nodes: &mut SoaNodes,
    obs: &mut O,
    q: &mut Q,
    rng: &mut SimRng,
) {
    if nodes.is_sleeping(node) {
        return;
    }
    let Some(ix) = nodes.satisfied_guard(node, ctx.graph.guard(node)) else {
        return;
    };
    let cause = TriggerCause::from_guard_index(ix);
    obs.on_fire(node, now, cause);
    let sleep_epoch = nodes.fire(node);
    let dur = rng.duration_in(ctx.cfg.timing.sleep.lo, ctx.cfg.timing.sleep.hi);
    q.push(
        now + dur,
        Ev::Wake {
            node,
            epoch: sleep_epoch,
        },
    );
    broadcast::<Q, FAULT_FREE>(node, now, ctx, q, rng);
}

/// Send a trigger message on every correct outgoing link of `node`.
///
/// With a fully-correct fault plan (the common case — and always under
/// `FAULT_FREE`, where the branch is compiled out) the behaviors lookup is
/// skipped entirely; the RNG stream is identical on both paths because
/// every link is sampled either way.
fn broadcast<Q: EvSink, const FAULT_FREE: bool>(
    node: NodeId,
    now: Time,
    ctx: &RunCtx<'_>,
    q: &mut Q,
    rng: &mut SimRng,
) {
    if FAULT_FREE || ctx.all_links_correct {
        for &l in ctx.graph.out_links(node) {
            let d = ctx.delays.sample(l, rng);
            q.push(now + d, Ev::Deliver { link: l });
        }
    } else {
        for &l in ctx.graph.out_links(node) {
            if ctx.behaviors[l as usize] == LinkBehavior::Correct {
                let d = ctx.delays.sample(l, rng);
                q.push(now + d, Ev::Deliver { link: l });
            }
        }
    }
}

/// A stuck-at-1 in-port re-asserts its memory flag the instant it was
/// cleared. (The `FAULT_FREE` batched kernel never calls this: fault-free
/// implies `all_links_correct`, under which this is a no-op.)
fn refresh_stuck_one<Q: EvSink>(
    node: NodeId,
    port: u8,
    now: Time,
    ctx: &RunCtx<'_>,
    nodes: &mut SoaNodes,
    q: &mut Q,
    rng: &mut SimRng,
) {
    if ctx.all_links_correct {
        return; // no stuck-at-1 links anywhere
    }
    let l = ctx.graph.in_links(node)[port as usize];
    if ctx.behaviors[l as usize] != LinkBehavior::StuckOne {
        return;
    }
    if let Some(epoch) = nodes.set_flag(node, port) {
        let dur = rng.duration_in(ctx.cfg.timing.link.lo, ctx.cfg.timing.link.hi);
        q.push(now + dur, Ev::LinkTimeout { node, port, epoch });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hex_core::{HexGrid, NodeFault, D_MINUS, D_PLUS};
    use hex_des::Schedule;

    fn zero_schedule(w: u32) -> Schedule {
        Schedule::single_pulse(vec![Time::ZERO; w as usize])
    }

    #[test]
    fn fault_free_wave_triggers_everyone_once() {
        let grid = HexGrid::new(10, 8);
        let trace = simulate(grid.graph(), &zero_schedule(8), &SimConfig::fault_free(), 1);
        for n in grid.graph().node_ids() {
            assert_eq!(
                trace.fires[n as usize].len(),
                1,
                "node {:?} fired {} times",
                grid.coord_of(n),
                trace.fires[n as usize].len()
            );
        }
    }

    #[test]
    fn wave_respects_delay_bounds_per_layer() {
        let grid = HexGrid::new(10, 8);
        let trace = simulate(grid.graph(), &zero_schedule(8), &SimConfig::fault_free(), 2);
        for layer in 1..=10u32 {
            for col in 0..8 {
                let n = grid.node(layer, col as i64);
                let t = trace.fires[n as usize][0].0;
                // A node at layer ℓ cannot fire before ℓ·d- nor after the
                // fault-free upper envelope 2ℓ·d+ (Lemma 3's induction).
                assert!(t >= Time::ZERO + D_MINUS.times(layer as i64));
                assert!(t <= Time::ZERO + D_PLUS.times(2 * layer as i64));
            }
        }
    }

    #[test]
    fn layer1_triggering_causes_are_central_with_zero_skew() {
        // With all sources firing at 0 and the first wave, layer-1 nodes are
        // triggered by their two lower neighbors (the side neighbors fire no
        // earlier), i.e. centrally (or via a pair involving a lower port).
        let grid = HexGrid::new(3, 6);
        let trace = simulate(grid.graph(), &zero_schedule(6), &SimConfig::fault_free(), 3);
        for col in 0..6 {
            let n = grid.node(1, col as i64);
            let (_, cause) = trace.fires[n as usize][0];
            assert_ne!(cause, TriggerCause::Source);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let grid = HexGrid::new(8, 6);
        let cfg = SimConfig::fault_free();
        let t1 = simulate(grid.graph(), &zero_schedule(6), &cfg, 42);
        let t2 = simulate(grid.graph(), &zero_schedule(6), &cfg, 42);
        assert_eq!(t1.fires, t2.fires);
        let t3 = simulate(grid.graph(), &zero_schedule(6), &cfg, 43);
        assert_ne!(t1.fires, t3.fires);
    }

    #[test]
    fn fixed_delays_give_exact_wave() {
        // With every delay exactly d+, node (ℓ, i) fires at exactly ℓ·d+.
        let grid = HexGrid::new(6, 5);
        let cfg = SimConfig {
            delays: DelayModel::Fixed(D_PLUS),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &zero_schedule(5), &cfg, 7);
        for layer in 0..=6u32 {
            for col in 0..5 {
                let n = grid.node(layer, col as i64);
                assert_eq!(
                    trace.fires[n as usize][0].0,
                    Time::ZERO + D_PLUS.times(layer as i64)
                );
            }
        }
    }

    #[test]
    fn fail_silent_node_leaves_neighbors_alive() {
        let grid = HexGrid::new(10, 8);
        let victim = grid.node(3, 4);
        let cfg = SimConfig {
            faults: FaultPlan::none().with_node(victim, NodeFault::FailSilent),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &zero_schedule(8), &cfg, 11);
        // Faulty node records nothing.
        assert!(trace.fires[victim as usize].is_empty());
        // Everyone else still fires exactly once (Condition 1 holds for a
        // single fault).
        for n in grid.graph().node_ids() {
            if n != victim {
                assert_eq!(
                    trace.fires[n as usize].len(),
                    1,
                    "node {:?}",
                    grid.coord_of(n)
                );
            }
        }
    }

    #[test]
    fn two_adjacent_crashes_starve_common_upper_neighbor() {
        // Section 3.2: "two adjacent crash failures on some layer just
        // effectively crash their common neighbor in the layer above".
        // (2,3) and (2,4) are the lower-left/lower-right in-neighbors of
        // (3,3). With both silent, (3,3) can still be saved by left/right
        // support... but if we also keep the wave from the sides it cannot.
        // Use a narrow wave: actually with full-width wave the side
        // neighbors DO save (3,3) via (left ∧ lower-left)? No: lower-left
        // (2,3) is dead, so pairs (0,1),(1,2),(2,3) all involve a dead lower
        // port except (left, lower-left) = (0,1) with port 1 dead and
        // (lower-right, right) = (2,3) with port 2 dead. All three guard
        // pairs include a lower port — so (3,3) can never fire. This
        // violates Condition 1 (two faulty in-neighbors) and demonstrates
        // exactly the effective-crash the paper describes.
        let grid = HexGrid::new(6, 8);
        let a = grid.node(2, 3);
        let b = grid.node(2, 4);
        let starved = grid.node(3, 3);
        let cfg = SimConfig {
            faults: FaultPlan::none().with_nodes(&[a, b], NodeFault::FailSilent),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &zero_schedule(8), &cfg, 13);
        assert!(
            trace.fires[starved as usize].is_empty(),
            "(3,3) should starve"
        );
        // But the pulse still reaches the top layer everywhere else: the
        // wave flows around the hole.
        for col in 0..8 {
            let n = grid.node(6, col as i64);
            assert_eq!(trace.fires[n as usize].len(), 1);
        }
    }

    #[test]
    fn stuck_one_links_alone_do_not_trigger() {
        // A single Byzantine in-neighbor (even stuck-1 on all links) cannot
        // make a correct node fire: the guard needs two adjacent flags and
        // only one port is faulty (Condition 1 with f = 1).
        let grid = HexGrid::new(4, 6);
        let byz = grid.node(1, 2);
        let cfg = SimConfig {
            faults: FaultPlan::none().with_node(byz, NodeFault::Byzantine),
            timing: Timing::paper_scenario_iii(),
            // No pulses at all: sources never fire.
            ..SimConfig::fault_free()
        };
        let empty = Schedule::new(vec![Vec::new(); 6]);
        let cfg = SimConfig {
            horizon: Some(Time::from_ns(500.0)),
            ..cfg
        };
        let trace = simulate(grid.graph(), &empty, &cfg, 17);
        for n in grid.graph().node_ids() {
            assert!(
                trace.fires[n as usize].is_empty(),
                "node {:?} fired spuriously",
                grid.coord_of(n)
            );
        }
    }

    #[test]
    fn multi_pulse_clean_run_fires_once_per_pulse() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(6, 6);
        let mut rng = SimRng::seed_from_u64(5);
        let train = PulseTrain::new(Scenario::Zero, 4, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 19);
        for n in grid.graph().node_ids() {
            assert_eq!(
                trace.fires[n as usize].len(),
                4,
                "node {:?}",
                grid.coord_of(n)
            );
        }
    }

    #[test]
    fn all_flags_set_fires_spurious_pulse_then_recovers() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(5, 6);
        let mut rng = SimRng::seed_from_u64(31);
        let train = PulseTrain::new(Scenario::Zero, 6, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            init: InitState::AllFlagsSet,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 37);
        // Every forwarder fires the spurious pulse at exactly time 0 (its
        // guard is satisfied by the corrupted flags)...
        for n in grid.graph().node_ids() {
            if grid.graph().role(n) == Role::Forwarder {
                assert_eq!(trace.fires[n as usize][0].0, Time::ZERO, "node {n}");
            }
        }
        // ...and still settles to exactly one firing per real pulse: 6
        // scheduled + 1 spurious.
        for n in grid.graph().node_ids() {
            if grid.graph().role(n) == Role::Forwarder {
                let count = trace.fires[n as usize].len();
                assert!(
                    (6..=7).contains(&count),
                    "node {n} fired {count} times (expected 6 real + ≤1 spurious)"
                );
            }
        }
    }

    #[test]
    fn all_asleep_misses_first_pulse_but_recovers() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(5, 6);
        let mut rng = SimRng::seed_from_u64(41);
        let train = PulseTrain::new(Scenario::Zero, 6, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            init: InitState::AllAsleep,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 43);
        let period = train.period(6);
        for n in grid.graph().node_ids() {
            if grid.graph().role(n) != Role::Forwarder {
                continue;
            }
            let fires = &trace.fires[n as usize];
            // The fabric may lose the pulse(s) that arrive while asleep but
            // must fire regularly afterwards: at least the last 4 pulses,
            // never more than one firing per pulse window.
            assert!(
                (4..=6).contains(&fires.len()),
                "node {n} fired {} times",
                fires.len()
            );
            for w in fires.windows(2) {
                let gap = w[1].0 - w[0].0;
                assert!(
                    gap > period / 2,
                    "node {n}: double firing within one pulse window"
                );
            }
        }
    }

    #[test]
    fn arbitrary_init_stabilizes_to_once_per_pulse() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(5, 6);
        let mut rng = SimRng::seed_from_u64(23);
        let train = PulseTrain::new(Scenario::Zero, 8, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            init: InitState::Arbitrary,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 29);
        // After the first few pulses every node must fire regularly: count
        // fires in the second half of the run.
        let period = train.period(6);
        let half = sched.t_min(4).unwrap();
        for n in grid.graph().node_ids() {
            if grid.graph().role(n) == Role::Source {
                continue;
            }
            let late: Vec<Time> = trace.fires[n as usize]
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| t >= half)
                .collect();
            assert!(
                late.len() >= 3 && late.len() <= 5,
                "node {:?} fired {} times after stabilization",
                grid.coord_of(n),
                late.len()
            );
            for w in late.windows(2) {
                let gap = w[1] - w[0];
                assert!(
                    gap > period / 2 && gap < period * 2,
                    "irregular gap {gap:?} at node {:?}",
                    grid.coord_of(n)
                );
            }
        }
    }

    /// Every queue policy replays the identical execution: same seed, same
    /// trace, across fault-free, faulty and corrupted-init regimes.
    #[test]
    fn queue_policies_produce_identical_traces() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(8, 6);
        let mut rng = SimRng::seed_from_u64(3);
        let multi =
            PulseTrain::new(Scenario::Zero, 3, Duration::from_ns(300.0)).generate(6, &mut rng);
        let configs: Vec<(SimConfig, Schedule)> = vec![
            (SimConfig::fault_free(), zero_schedule(6)),
            (
                SimConfig {
                    faults: FaultPlan::none().with_node(grid.node(3, 2), NodeFault::Byzantine),
                    timing: Timing::paper_scenario_iii(),
                    ..SimConfig::fault_free()
                },
                zero_schedule(6),
            ),
            (
                SimConfig {
                    timing: Timing::paper_scenario_iii(),
                    init: InitState::Arbitrary,
                    record_arrivals: true,
                    ..SimConfig::fault_free()
                },
                multi,
            ),
        ];
        for (cfg, sched) in &configs {
            let reference = simulate(grid.graph(), sched, cfg, 77);
            for policy in [QueuePolicy::QuadHeap, QueuePolicy::Calendar] {
                let alt = SimConfig {
                    queue: policy,
                    ..cfg.clone()
                };
                let trace = simulate(grid.graph(), sched, &alt, 77);
                assert_eq!(trace, reference, "policy {policy:?} diverged");
            }
        }
    }

    /// A dirty scratch carried *across* queue policies still reproduces
    /// the fresh run for each policy.
    #[test]
    fn scratch_reuse_across_policy_changes() {
        let grid = HexGrid::new(7, 5);
        let sched = zero_schedule(5);
        let mut scratch = SimScratch::new();
        for (i, policy) in [
            QueuePolicy::Calendar,
            QueuePolicy::BinaryHeap,
            QueuePolicy::QuadHeap,
            QueuePolicy::Calendar,
            QueuePolicy::QuadHeap,
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = SimConfig {
                queue: policy,
                ..SimConfig::fault_free()
            };
            let seed = 100 + i as u64;
            let fresh = simulate(grid.graph(), &sched, &cfg, seed);
            let reused = simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed);
            assert_eq!(&fresh, reused, "step {i} under {policy:?}");
        }
        // Policy churn never re-grows the trace-sized buffers.
        assert_eq!(scratch.grow_count(), 1);
    }

    /// The stale counter sees exactly the epoch-rejected churn: zero in
    /// the generous single-pulse regime, positive under tight timeouts
    /// with corrupted init, and identical across queue policies.
    #[test]
    fn stale_counter_tracks_epoch_rejections() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(6, 6);
        let sched = zero_schedule(6);
        let mut scratch = SimScratch::new();

        // Even a fault-free single-pulse run churns: every wake-up clears
        // flags whose LinkTimeouts are still pending, which then pop
        // epoch-rejected. The counter must see them without ever
        // exceeding the pop count.
        simulate_into(
            &mut scratch,
            grid.graph(),
            &sched,
            &SimConfig::fault_free(),
            1,
        );
        let (popped, stale) = (scratch.popped_events(), scratch.stale_events());
        assert!(popped > 0);
        assert!(stale < popped, "stale {stale} of {popped} popped");

        let mut rng = SimRng::seed_from_u64(9);
        let multi =
            PulseTrain::new(Scenario::Zero, 6, Duration::from_ns(300.0)).generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            // Arbitrary init is the churn generator: nodes wake early and
            // clear flags whose residual timeouts are still pending, and
            // fresh deliveries re-set them before the old epoch pops.
            init: InitState::Arbitrary,
            ..SimConfig::fault_free()
        };
        let mut counts = Vec::new();
        for policy in QueuePolicy::ALL {
            let cfg = SimConfig {
                queue: policy,
                ..cfg.clone()
            };
            simulate_into(&mut scratch, grid.graph(), &multi, &cfg, 2);
            counts.push((scratch.popped_events(), scratch.stale_events()));
        }
        assert!(counts[0].1 > 0, "corrupted multi-pulse runs churn timeouts");
        assert!(counts[0].1 < counts[0].0, "stale events are a strict share");
        assert_eq!(counts[0], counts[1], "quad heap diverged");
        assert_eq!(counts[0], counts[2], "calendar diverged");
    }

    /// The streaming observer path replays the identical execution: the
    /// binner's slots match the trace-then-view extraction for every
    /// queue policy, with one dirty scratch carried across both paths.
    #[test]
    fn observed_run_matches_trace_extraction_across_policies() {
        use crate::trace::{assign_pulses, PulseView};
        use hex_clock::{PulseTrain, Scenario};

        let grid = HexGrid::new(7, 6);
        let mut rng = SimRng::seed_from_u64(13);
        let multi =
            PulseTrain::new(Scenario::Zero, 3, Duration::from_ns(300.0)).generate(6, &mut rng);
        let single = zero_schedule(6);
        let d_mid = hex_core::DelayRange::paper().mid();
        let mut scratch = SimScratch::new();

        for policy in QueuePolicy::ALL {
            // Single pulse: binner slots == PulseView::from_single_pulse.
            let cfg = SimConfig {
                queue: policy,
                ..SimConfig::fault_free()
            };
            let trace = simulate(grid.graph(), &single, &cfg, 5);
            let view = PulseView::from_single_pulse(&grid, &trace);
            let binner = simulate_observed_into(&mut scratch, &grid, &single, &cfg, 5, d_mid);
            assert_eq!(binner.pulses(), 1);
            for layer in 0..=7 {
                for col in 0..6i64 {
                    assert_eq!(
                        binner.grid_time(0, layer, col),
                        view.time(layer, col),
                        "{policy:?} node ({layer},{col})"
                    );
                }
            }
            assert_eq!(binner.spurious(), view.spurious, "{policy:?}");

            // Multi pulse with corrupted init: binner == assign_pulses.
            let cfg = SimConfig {
                queue: policy,
                timing: Timing::paper_scenario_iii(),
                init: InitState::Arbitrary,
                ..SimConfig::fault_free()
            };
            let trace = simulate(grid.graph(), &multi, &cfg, 6);
            let views = assign_pulses(&grid, &trace, &multi, d_mid);
            let binner = simulate_observed_into(&mut scratch, &grid, &multi, &cfg, 6, d_mid);
            assert_eq!(binner.pulses(), views.len());
            let mut spurious = 0;
            for (k, v) in views.iter().enumerate() {
                spurious += v.spurious;
                for layer in 0..=7 {
                    for col in 0..6i64 {
                        assert_eq!(
                            binner.grid_time(k, layer, col),
                            v.time(layer, col),
                            "{policy:?} pulse {k} node ({layer},{col})"
                        );
                    }
                }
            }
            assert_eq!(binner.spurious(), spurious, "{policy:?}");
        }
        // Both paths shared the scratch without regrowing its buffers.
        assert_eq!(scratch.grow_count(), 1);
    }

    /// The observed path records the faulty set and skips faulty fires
    /// exactly like the trace path.
    #[test]
    fn observed_run_reports_faulty_nodes() {
        let grid = HexGrid::new(5, 6);
        let victim = grid.node(2, 3);
        let cfg = SimConfig {
            faults: FaultPlan::none().with_node(victim, NodeFault::FailSilent),
            ..SimConfig::fault_free()
        };
        let mut scratch = SimScratch::new();
        let d_mid = hex_core::DelayRange::paper().mid();
        let binner = simulate_observed_into(&mut scratch, &grid, &zero_schedule(6), &cfg, 3, d_mid);
        assert_eq!(binner.faulty(), &[victim]);
        assert_eq!(binner.time(0, victim), None);
    }

    /// Regression net for the scratch work counters: **every** reuse path
    /// (same-policy reuse, policy switch, the observed entry point, and a
    /// run that pops zero events) must leave `popped_events` /
    /// `stale_events` describing the *most recent* run only — never a
    /// stale or accumulated value from earlier runs through the same
    /// scratch.
    #[test]
    fn counters_describe_only_the_most_recent_run() {
        let grid = HexGrid::new(6, 6);
        let sched = zero_schedule(6);
        let d_mid = hex_core::DelayRange::paper().mid();
        let mut scratch = SimScratch::new();

        // A real run accumulates work...
        simulate_into(
            &mut scratch,
            grid.graph(),
            &sched,
            &SimConfig::fault_free(),
            1,
        );
        let first = scratch.popped_events();
        assert!(first > 0);

        // ...a second identical run through the same scratch reports the
        // same work, not 2× (the queue's pop counter resets with it).
        simulate_into(
            &mut scratch,
            grid.graph(),
            &sched,
            &SimConfig::fault_free(),
            1,
        );
        assert_eq!(
            scratch.popped_events(),
            first,
            "counter accumulated across reuse"
        );

        // The observed entry point resets and reports identically: the
        // event interleaving is the same, only the recording differs.
        simulate_observed_into(
            &mut scratch,
            &grid,
            &sched,
            &SimConfig::fault_free(),
            1,
            d_mid,
        );
        assert_eq!(scratch.popped_events(), first, "observed path diverged");

        // A policy switch through the same scratch still reports
        // per-run work.
        let alt = SimConfig {
            queue: QueuePolicy::QuadHeap,
            ..SimConfig::fault_free()
        };
        simulate_into(&mut scratch, grid.graph(), &sched, &alt, 1);
        assert_eq!(
            scratch.popped_events(),
            first,
            "policy switch leaked counters"
        );

        // A run that pops nothing (no scheduled pulses, clean init) must
        // read 0 — not the previous run's totals.
        let empty = Schedule::new(vec![Vec::new(); 6]);
        let quiet = SimConfig {
            horizon: Some(Time::from_ns(100.0)),
            ..SimConfig::fault_free()
        };
        simulate_into(&mut scratch, grid.graph(), &empty, &quiet, 1);
        assert_eq!(
            scratch.popped_events(),
            0,
            "stale popped count survived reuse"
        );
        assert_eq!(
            scratch.stale_events(),
            0,
            "stale stale count survived reuse"
        );
    }

    /// The tentpole wall: the bucket-batched SoA kernels replay the scalar
    /// reference byte-for-byte — fires, arrivals, popped/stale counters —
    /// across every queue policy and every regime that exercises a
    /// different kernel shape (fault-free fast path, faulty masks,
    /// corrupted init with short residual timeouts).
    #[test]
    fn batched_kernels_match_scalar_reference() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(8, 6);
        let mut rng = SimRng::seed_from_u64(3);
        let multi =
            PulseTrain::new(Scenario::Zero, 4, Duration::from_ns(300.0)).generate(6, &mut rng);
        let configs: Vec<(SimConfig, Schedule)> = vec![
            // Fault-free clean start: the FAULT_FREE monomorphization.
            (SimConfig::fault_free(), zero_schedule(6)),
            // Byzantine node (stuck-at links, inert source): masked path.
            (
                SimConfig {
                    faults: FaultPlan::none().with_node(grid.node(3, 2), NodeFault::Byzantine),
                    timing: Timing::paper_scenario_iii(),
                    record_arrivals: true,
                    ..SimConfig::fault_free()
                },
                zero_schedule(6),
            ),
            // Corrupted init, tight timing, multi-pulse: heavy stale churn
            // and pre-loop residuals shorter than the batch span.
            (
                SimConfig {
                    timing: Timing::paper_scenario_iii(),
                    init: InitState::Arbitrary,
                    record_arrivals: true,
                    ..SimConfig::fault_free()
                },
                multi,
            ),
        ];
        let mut scalar_scratch = SimScratch::new();
        let mut batched_scratch = SimScratch::new();
        for (cfg, sched) in &configs {
            for policy in QueuePolicy::ALL {
                let scalar = SimConfig {
                    queue: policy,
                    batch: false,
                    ..cfg.clone()
                };
                let batched = SimConfig {
                    batch: true,
                    ..scalar.clone()
                };
                let s =
                    simulate_into(&mut scalar_scratch, grid.graph(), sched, &scalar, 77).clone();
                let counters = (
                    scalar_scratch.popped_events(),
                    scalar_scratch.stale_events(),
                );
                let b = simulate_into(&mut batched_scratch, grid.graph(), sched, &batched, 77);
                assert_eq!(b, &s, "batched diverged under {policy:?}");
                assert_eq!(
                    (
                        batched_scratch.popped_events(),
                        batched_scratch.stale_events()
                    ),
                    counters,
                    "work counters diverged under {policy:?}"
                );
            }
        }
    }

    /// The streaming observer sees the identical execution from the
    /// batched kernels, with one dirty scratch alternating between the
    /// scalar and batched paths (dirty-scratch reuse across dispatch
    /// strategies must be as inert as across queue policies).
    #[test]
    fn batched_observed_path_matches_scalar_with_shared_scratch() {
        let grid = HexGrid::new(7, 6);
        let sched = zero_schedule(6);
        let d_mid = hex_core::DelayRange::paper().mid();
        let mut scratch = SimScratch::new();
        for policy in QueuePolicy::ALL {
            let scalar = SimConfig {
                queue: policy,
                batch: false,
                timing: Timing::paper_scenario_iii(),
                init: InitState::AllFlagsSet,
                ..SimConfig::fault_free()
            };
            let batched = SimConfig {
                batch: true,
                ..scalar.clone()
            };
            // Same scratch, alternating strategies: batched first (dirties
            // the batch buffer), then scalar, then batched again.
            let b1: Vec<_> =
                simulate_observed_into(&mut scratch, &grid, &sched, &batched, 9, d_mid)
                    .slots()
                    .to_vec();
            let s: Vec<_> = simulate_observed_into(&mut scratch, &grid, &sched, &scalar, 9, d_mid)
                .slots()
                .to_vec();
            let b2: Vec<_> =
                simulate_observed_into(&mut scratch, &grid, &sched, &batched, 9, d_mid)
                    .slots()
                    .to_vec();
            assert_eq!(b1, s, "batched observer diverged under {policy:?}");
            assert_eq!(
                b2, s,
                "dirty-scratch batched rerun diverged under {policy:?}"
            );
        }
        assert_eq!(scratch.grow_count(), 1);
    }

    /// The batch span is the fastest increment the loop can schedule.
    #[test]
    fn min_increment_is_the_fastest_event() {
        let cfg = SimConfig::fault_free();
        // The delivery envelope's lower edge is the fastest increment
        // under generous timing.
        assert_eq!(cfg.min_increment(), cfg.delays.envelope().lo);
        let tight = SimConfig {
            timing: Timing::paper_scenario_iii(),
            ..SimConfig::fault_free()
        };
        assert!(tight.min_increment() <= tight.timing.link.lo);
        assert!(tight.min_increment() <= tight.timing.sleep.lo);
        assert!(tight.min_increment() <= tight.delays.envelope().lo);
        assert!(tight.min_increment() > Duration::ZERO);
    }

    #[test]
    fn queue_policy_labels_round_trip() {
        for policy in QueuePolicy::ALL {
            assert_eq!(policy.label().parse::<QueuePolicy>().unwrap(), policy);
        }
        assert_eq!(
            "quad".parse::<QueuePolicy>().unwrap(),
            QueuePolicy::QuadHeap
        );
        assert!("fibonacci".parse::<QueuePolicy>().is_err());
    }

    /// A scripted mid-run crash silences the victim for exactly its
    /// window and the grid keeps pulsing around the hole; after a clean
    /// rejoin the victim fires again with later pulses.
    #[test]
    fn scripted_crash_window_silences_then_recovers() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(5, 6);
        let mut rng = SimRng::seed_from_u64(51);
        let sched =
            PulseTrain::new(Scenario::Zero, 6, Duration::from_ns(300.0)).generate(6, &mut rng);
        let victim = grid.node(2, 3);
        let crash = Time::from_ns(150.0);
        let heal = Time::from_ns(1_050.0);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            script: Some(FaultScript::crash_rejoin(
                victim,
                crash,
                heal,
                RejoinState::Clean,
            )),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 61);
        let fires = &trace.fires[victim as usize];
        assert!(
            fires.iter().any(|&(t, _)| t < crash),
            "victim missed the pre-crash pulse"
        );
        assert!(
            fires.iter().all(|&(t, _)| t < crash || t >= heal),
            "victim fired while crashed"
        );
        assert!(
            fires.iter().filter(|&&(t, _)| t >= heal).count() >= 2,
            "victim never rejoined the pulse train"
        );
        // The wave flows around the hole: the top layer still sees every
        // pulse (a single crash respects Condition 1).
        for col in 0..6 {
            let n = grid.node(5, col as i64);
            assert!(
                (5..=7).contains(&trace.fires[n as usize].len()),
                "top-layer node {n} fired {} times",
                trace.fires[n as usize].len()
            );
        }
    }

    /// Scripted campaigns replay byte-identically across every queue
    /// policy and between the scalar and bucket-batched drivers, with a
    /// dirty scratch shared across all legs. The script mixes every
    /// transition kind: a Byzantine burst with an adversarial rejoin, a
    /// crash + clean rejoin overlapping it, and a link flap.
    #[test]
    fn scripted_runs_replay_identically_across_policies_and_dispatch() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(6, 6);
        let mut rng = SimRng::seed_from_u64(71);
        let sched =
            PulseTrain::new(Scenario::Zero, 5, Duration::from_ns(300.0)).generate(6, &mut rng);
        let script = FaultScript::none()
            .with(
                Time::from_ns(40.0),
                FaultEvent::Fail(grid.node(3, 2), NodeFault::Byzantine),
            )
            .with(
                Time::from_ns(400.0),
                FaultEvent::Heal(grid.node(3, 2), RejoinState::Arbitrary),
            )
            .with(
                Time::from_ns(400.0),
                FaultEvent::Fail(grid.node(1, 4), NodeFault::FailSilent),
            )
            .with(
                Time::from_ns(700.0),
                FaultEvent::Heal(grid.node(1, 4), RejoinState::Clean),
            )
            .with(
                Time::from_ns(900.0),
                FaultEvent::LinkDown(5, LinkBehavior::StuckOne),
            )
            .with(Time::from_ns(1_100.0), FaultEvent::LinkUp(5));
        let base = SimConfig {
            timing: Timing::paper_scenario_iii(),
            record_arrivals: true,
            script: Some(script),
            ..SimConfig::fault_free()
        };
        let reference = simulate(grid.graph(), &sched, &base, 77);
        let mut scratch = SimScratch::new();
        for policy in QueuePolicy::ALL {
            for batch in [false, true] {
                let cfg = SimConfig {
                    queue: policy,
                    batch,
                    ..base.clone()
                };
                let t = simulate_into(&mut scratch, grid.graph(), &sched, &cfg, 77);
                assert_eq!(t, &reference, "{policy:?} batch={batch} diverged");
            }
        }
    }

    /// Metamorphic: a script whose whole disturbance heals cleanly before
    /// the wavefront reaches the victim leaves no observable trace — the
    /// run is byte-identical to the unscripted one on both dispatch
    /// paths (the script machinery draws only from its own salted RNG
    /// stream).
    #[test]
    fn script_healed_before_the_wave_is_invisible() {
        let grid = HexGrid::new(5, 6);
        let sched = zero_schedule(6);
        let victim = grid.node(4, 1);
        // The wave cannot reach layer 4 before 4·d⁻; the whole fault
        // window closes (with a clean rejoin) well before that.
        let heal = Time::from_ps(20_000);
        assert!(heal < Time::ZERO + D_MINUS.times(4));
        let script =
            FaultScript::crash_rejoin(victim, Time::from_ps(1_000), heal, RejoinState::Clean);
        for batch in [false, true] {
            let plain = SimConfig {
                batch,
                ..SimConfig::fault_free()
            };
            let scripted = SimConfig {
                script: Some(script.clone()),
                ..plain.clone()
            };
            let a = simulate(grid.graph(), &sched, &plain, 83);
            let b = simulate(grid.graph(), &sched, &scripted, 83);
            assert_eq!(a, b, "healed-in-place script left a trace (batch={batch})");
        }
    }

    #[test]
    fn max_increment_is_the_slowest_event() {
        let cfg = SimConfig::fault_free();
        // Generous timing: the 10 µs sleep dominates.
        assert_eq!(cfg.max_increment(), cfg.timing.sleep.hi);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            ..SimConfig::fault_free()
        };
        assert_eq!(cfg.max_increment().ps(), 94_940);
    }
}
