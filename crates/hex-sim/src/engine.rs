//! The simulation engine: Algorithm 1 + Fig. 7 state machines on any
//! [`PulseGraph`], under configurable delays, faults and initial states.
//!
//! ## Event model
//!
//! * `SourceFire` — a layer-0 source emits its scheduled pulse;
//! * `Deliver` — a trigger message arrives at a link's receiver (memory-flag
//!   SM: ready → memorize);
//! * `LinkTimeout` — a memory flag expires (memorize → ready), epoch-tagged;
//! * `Wake` — a sleep timeout expires (sleeping → ready, flags cleared),
//!   epoch-tagged.
//!
//! ## Fault semantics
//!
//! Outgoing links of faulty nodes (and explicitly overridden links) are
//! resolved to [`LinkBehavior`]s at simulation start:
//!
//! * `StuckZero` never delivers anything;
//! * `StuckOne` holds the receiver's port at logical 1: the port's memory
//!   flag is set at simulation start and **re-sets itself the instant it is
//!   cleared** (by link timeout or wake-up) — the paper's "constant 1 ⇒
//!   fast triggering" behaviour. Faulty nodes themselves are inert: their
//!   own firing rule is irrelevant because their outputs are constants.

use hex_core::{
    DelayModel, FaultPlan, FiringState, LinkBehavior, NodeId, NodeState, PulseGraph, Role,
    Timing, TriggerCause,
};
use hex_des::{Duration, EventQueue, Schedule, SimRng, Time};

use crate::trace::Trace;

/// Initial node states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitState {
    /// All nodes ready with cleared memory flags — the properly-initialized
    /// state assumed by the Section 3.1 analysis (constraints (C1)/(C2)).
    Clean,
    /// Every forwarder starts in an arbitrary state (Theorem 2): firing SM
    /// ready or sleeping with a uniform residual sleep in `[0, T+_sleep]`,
    /// each memory flag independently set with probability 1/2 with a
    /// uniform residual timeout in `[0, T+_link]`.
    Arbitrary,
    /// Adversarial corruption: every forwarder is ready with **all** memory
    /// flags set and full link timeouts — the whole fabric emits one
    /// spurious global pulse at time 0 and must recover. The worst case for
    /// spurious-pulse confusion within Theorem 2's state space.
    AllFlagsSet,
    /// Adversarial corruption: every forwarder is asleep with the maximal
    /// residual sleep `T+_sleep` and cleared flags — the fabric misses the
    /// earliest trigger messages and must resynchronize off link timeouts.
    /// The worst case for missed-pulse recovery.
    AllAsleep,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Link-delay model (random per message, per link, or deterministic).
    pub delays: DelayModel,
    /// Algorithm-1 timeout parameters.
    pub timing: Timing,
    /// Fault assignment.
    pub faults: FaultPlan,
    /// Initial state regime.
    pub init: InitState,
    /// Hard simulation end time. `None` derives a horizon generous enough
    /// for the whole schedule to propagate through the grid (see
    /// [`SimConfig::auto_horizon`]).
    pub horizon: Option<Time>,
    /// Record every flag-setting message arrival into
    /// [`Trace::arrivals`] (provenance for the execution checker;
    /// off by default — it costs memory proportional to message count).
    pub record_arrivals: bool,
}

impl SimConfig {
    /// Fault-free, clean-start configuration with the paper's delay model
    /// and generous timeouts (single-pulse regime).
    pub fn fault_free() -> Self {
        SimConfig {
            delays: DelayModel::paper(),
            timing: Timing::generous(),
            faults: FaultPlan::none(),
            init: InitState::Clean,
            horizon: None,
            record_arrivals: false,
        }
    }

    /// Derive a horizon: last scheduled source pulse, plus `depth + faults +
    /// 2` hops at `2·d+` each (Lemma 5's worst-case propagation allowance),
    /// plus two full sleep periods of slack.
    pub fn auto_horizon(&self, graph: &PulseGraph, schedule: &Schedule) -> Time {
        let depth = graph
            .node_ids()
            .filter_map(|n| graph.coord(n))
            .map(|c| c.layer)
            .max()
            .unwrap_or_else(|| (graph.node_count() as f64).sqrt() as u32)
            as i64;
        let last = (0..schedule.pulses())
            .filter_map(|k| schedule.t_max(k))
            .max()
            .unwrap_or(Time::ZERO);
        let d_plus = self.delays.envelope().hi;
        let f = self.faults.fault_count() as i64;
        last + d_plus.times(2 * (depth + f + 2)) + self.timing.sleep.hi.times(2)
    }
}

#[derive(Debug, Clone)]
enum Ev {
    SourceFire { node: NodeId },
    Deliver { link: u32 },
    LinkTimeout { node: NodeId, port: u8, epoch: u32 },
    Wake { node: NodeId, epoch: u32 },
}

/// Reusable simulation working memory: the event queue, per-node states,
/// the [`Trace`] storage (per-node `fires`/`arrivals` vectors) and the
/// per-run [`RunView`](crate::spec::RunView) output buffers.
///
/// One run of [`simulate_into`] on a dirty scratch is **byte-identical** to
/// [`simulate`] on fresh allocations (pinned by the workspace determinism
/// wall and a property suite): reuse only recycles capacity, never state.
/// The batch paths ([`RunSpec::fold`](crate::spec::RunSpec::fold),
/// [`RunSpec::run_batch`](crate::spec::RunSpec::run_batch)) allocate one
/// scratch per worker thread, so a 250-run sweep performs O(threads) rather
/// than O(runs) trace-sized allocations.
///
/// ```
/// use hex_core::HexGrid;
/// use hex_des::{Schedule, Time};
/// use hex_sim::{simulate, simulate_into, SimConfig, SimScratch};
///
/// let grid = HexGrid::new(6, 5);
/// let sched = Schedule::single_pulse(vec![Time::ZERO; 5]);
/// let cfg = SimConfig::fault_free();
///
/// let mut scratch = SimScratch::new();
/// for seed in 0..4 {
///     let reused = simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed);
///     assert_eq!(reused.fires, simulate(grid.graph(), &sched, &cfg, seed).fires);
/// }
/// // All four runs shared one trace-sized allocation.
/// assert_eq!(scratch.grow_count(), 1);
/// ```
#[derive(Debug)]
pub struct SimScratch {
    trace: Trace,
    states: Vec<NodeState>,
    queue: EventQueue<Ev>,
    /// Spec-level output buffers
    /// ([`RunSpec::run_one_into`](crate::spec::RunSpec::run_one_into)
    /// refills these per run).
    pub(crate) out: crate::spec::RunView,
    grows: usize,
}

impl Default for SimScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SimScratch {
    /// An empty scratch; buffers are grown on first use and reused after.
    pub fn new() -> Self {
        SimScratch {
            trace: Trace {
                fires: Vec::new(),
                arrivals: Vec::new(),
                faulty: Vec::new(),
                horizon: Time::ZERO,
            },
            states: Vec::new(),
            queue: EventQueue::new(),
            out: crate::spec::RunView::default(),
            grows: 0,
        }
    }

    /// The trace of the most recent [`simulate_into`] run.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Extract the most recent trace, consuming the scratch.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// How many times the trace-sized buffers had to be (re)allocated —
    /// 1 after any number of same-shape runs; grows only when the graph
    /// shape changes under the scratch.
    pub fn grow_count(&self) -> usize {
        self.grows
    }

    /// Split into the last run's trace and the spec-level output buffers
    /// (both live in the scratch; the borrow checker needs them apart).
    pub(crate) fn trace_and_out(&mut self) -> (&Trace, &mut crate::spec::RunView) {
        (&self.trace, &mut self.out)
    }

    /// Make every buffer observationally identical to a fresh allocation
    /// for `graph`, reusing capacity whenever the shape allows.
    fn prepare(&mut self, graph: &PulseGraph) {
        let n = graph.node_count();
        let shape_ok = self.trace.fires.len() == n
            && self.trace.arrivals.len() == n
            && self.states.len() == n
            && graph.node_ids().all(|id| {
                let s = &self.states[id as usize];
                s.id() == id && s.ports() == graph.port_count(id)
            });
        if shape_ok {
            self.trace.clear();
            for s in &mut self.states {
                s.reset_clean();
            }
        } else {
            self.grows += 1;
            self.trace = Trace {
                fires: vec![Vec::new(); n],
                arrivals: vec![Vec::new(); n],
                faulty: Vec::new(),
                horizon: Time::ZERO,
            };
            self.states = graph
                .node_ids()
                .map(|id| NodeState::clean(id, graph.port_count(id)))
                .collect();
        }
        self.queue.clear();
        // First-run behavior matches steady-state reuse: the event list
        // starts sized for the graph instead of growing through the run.
        self.queue.reserve(n);
    }
}

/// Run one simulation of `graph` driven by `schedule` (one entry per source
/// node, in [`PulseGraph::source_ids`] order) under `cfg`, seeded by `seed`.
///
/// Returns the full [`Trace`]: per node, the list of firing times with
/// their trigger causes. Faulty nodes never record fires.
///
/// This is a thin fresh-scratch wrapper over [`simulate_into`]; batch
/// drivers that run many simulations reuse one [`SimScratch`] instead.
///
/// # Panics
///
/// Panics if the schedule's source count does not match the graph's.
pub fn simulate(graph: &PulseGraph, schedule: &Schedule, cfg: &SimConfig, seed: u64) -> Trace {
    let mut scratch = SimScratch::new();
    simulate_into(&mut scratch, graph, schedule, cfg, seed);
    scratch.into_trace()
}

/// Run one simulation into `scratch`, recycling its event queue, node
/// states and trace storage, and return the recorded trace (borrowed from
/// the scratch, which stays reusable for the next run).
///
/// The result is byte-identical to [`simulate`] with the same arguments,
/// no matter what ran through the scratch before.
///
/// # Panics
///
/// Panics if the schedule's source count does not match the graph's.
pub fn simulate_into<'s>(
    scratch: &'s mut SimScratch,
    graph: &PulseGraph,
    schedule: &Schedule,
    cfg: &SimConfig,
    seed: u64,
) -> &'s Trace {
    let sources: Vec<NodeId> = graph.source_ids().collect();
    assert_eq!(
        sources.len(),
        schedule.sources(),
        "schedule has {} sources, graph has {}",
        schedule.sources(),
        sources.len()
    );

    let mut rng = SimRng::seed_from_u64(seed);
    let delays = cfg.delays.resolve(graph, &mut rng);
    let behaviors = cfg.faults.resolve(graph, &mut rng);
    let horizon = cfg.horizon.unwrap_or_else(|| cfg.auto_horizon(graph, schedule));

    scratch.prepare(graph);
    let SimScratch {
        trace,
        states,
        queue: q,
        ..
    } = scratch;
    let states: &mut [NodeState] = states;
    let fires = &mut trace.fires;
    let arrivals = &mut trace.arrivals;

    // Schedule all source pulses.
    for (ix, &node) in sources.iter().enumerate() {
        for &t in schedule.source(ix) {
            q.push(t, Ev::SourceFire { node });
        }
    }

    // Corrupted initial states (self-stabilization experiments).
    if cfg.init != InitState::Clean {
        for n in graph.node_ids() {
            if graph.role(n) != Role::Forwarder || cfg.faults.is_faulty(n) {
                continue;
            }
            let ports = graph.port_count(n);
            let (sleeping, set): (bool, Vec<u8>) = match cfg.init {
                InitState::Arbitrary => (
                    rng.coin(),
                    (0..ports as u8).filter(|_| rng.coin()).collect(),
                ),
                InitState::AllFlagsSet => (false, (0..ports as u8).collect()),
                InitState::AllAsleep => (true, Vec::new()),
                InitState::Clean => unreachable!(),
            };
            let eps = states[n as usize].force_arbitrary(sleeping, &set);
            if let Some(e) = eps.sleep_epoch {
                let residual = match cfg.init {
                    InitState::Arbitrary => rng.duration_in(Duration::ZERO, cfg.timing.sleep.hi),
                    _ => cfg.timing.sleep.hi,
                };
                q.push(Time::ZERO + residual, Ev::Wake { node: n, epoch: e });
            }
            for (port, e) in eps.flag_epochs {
                let residual = match cfg.init {
                    InitState::Arbitrary => rng.duration_in(Duration::ZERO, cfg.timing.link.hi),
                    _ => rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi),
                };
                q.push(
                    Time::ZERO + residual,
                    Ev::LinkTimeout {
                        node: n,
                        port,
                        epoch: e,
                    },
                );
            }
        }
    }

    // Stuck-at-1 in-ports assert themselves from the start.
    for n in graph.node_ids() {
        if graph.role(n) != Role::Forwarder || cfg.faults.is_faulty(n) {
            continue;
        }
        for (port, &l) in graph.in_links(n).iter().enumerate() {
            if behaviors[l as usize] == LinkBehavior::StuckOne {
                if let Some(epoch) = states[n as usize].set_flag(port as u8) {
                    let dur = rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi);
                    q.push(
                        Time::ZERO + dur,
                        Ev::LinkTimeout {
                            node: n,
                            port: port as u8,
                            epoch,
                        },
                    );
                }
            }
        }
    }

    // Nodes whose guards are satisfied by the initial flag assignment fire
    // immediately (time 0).
    let ready_now: Vec<NodeId> = graph
        .node_ids()
        .filter(|&n| graph.role(n) == Role::Forwarder && !cfg.faults.is_faulty(n))
        .collect();
    for n in ready_now {
        maybe_fire(
            n, Time::ZERO, graph, cfg, &behaviors, &delays, states, fires, q, &mut rng,
        );
    }

    // Main loop.
    while let Some(ev) = q.pop() {
        let now = ev.at;
        if now > horizon {
            break;
        }
        match ev.payload {
            Ev::SourceFire { node } => {
                if cfg.faults.is_faulty(node) {
                    continue; // mute/Byzantine source: outputs are constants
                }
                fires[node as usize].push((now, TriggerCause::Source));
                broadcast(node, now, graph, &behaviors, &delays, q, &mut rng);
            }
            Ev::Deliver { link } => {
                let l = graph.link(link);
                let n = l.dst;
                if graph.role(n) != Role::Forwarder || cfg.faults.is_faulty(n) {
                    continue;
                }
                if let Some(epoch) = states[n as usize].set_flag(l.dst_port) {
                    if cfg.record_arrivals {
                        arrivals[n as usize].push(crate::trace::Arrival {
                            at: now,
                            from: l.src,
                            port: l.dst_port,
                        });
                    }
                    let dur = rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi);
                    q.push(
                        now + dur,
                        Ev::LinkTimeout {
                            node: n,
                            port: l.dst_port,
                            epoch,
                        },
                    );
                    maybe_fire(
                        n, now, graph, cfg, &behaviors, &delays, states, fires, q, &mut rng,
                    );
                }
            }
            Ev::LinkTimeout { node, port, epoch } => {
                if states[node as usize].expire_flag(port, epoch) {
                    refresh_stuck_one(
                        node, port, now, graph, cfg, &behaviors, states, q, &mut rng,
                    );
                    maybe_fire(
                        node, now, graph, cfg, &behaviors, &delays, states, fires, q, &mut rng,
                    );
                }
            }
            Ev::Wake { node, epoch } => {
                if states[node as usize].wake(epoch) {
                    // All flags were cleared; stuck-1 ports re-assert.
                    for port in 0..graph.port_count(node) as u8 {
                        refresh_stuck_one(
                            node, port, now, graph, cfg, &behaviors, states, q, &mut rng,
                        );
                    }
                    maybe_fire(
                        node, now, graph, cfg, &behaviors, &delays, states, fires, q, &mut rng,
                    );
                }
            }
        }
    }

    trace.faulty = cfg.faults.faulty_nodes();
    trace.horizon = horizon;
    &scratch.trace
}

/// If `node` is ready and its guard is satisfied, fire: record, broadcast,
/// sleep.
#[allow(clippy::too_many_arguments)]
fn maybe_fire(
    node: NodeId,
    now: Time,
    graph: &PulseGraph,
    cfg: &SimConfig,
    behaviors: &[LinkBehavior],
    delays: &hex_core::delay::ResolvedDelays,
    states: &mut [NodeState],
    fires: &mut [Vec<(Time, TriggerCause)>],
    q: &mut EventQueue<Ev>,
    rng: &mut SimRng,
) {
    let st = &mut states[node as usize];
    if st.firing_state() != FiringState::Ready {
        return;
    }
    let Some(ix) = st.satisfied_guard(graph.guard(node)) else {
        return;
    };
    let cause = TriggerCause::from_guard_index(ix);
    fires[node as usize].push((now, cause));
    let sleep_epoch = st.fire();
    let dur = rng.duration_in(cfg.timing.sleep.lo, cfg.timing.sleep.hi);
    q.push(
        now + dur,
        Ev::Wake {
            node,
            epoch: sleep_epoch,
        },
    );
    broadcast(node, now, graph, behaviors, delays, q, rng);
}

/// Send a trigger message on every correct outgoing link of `node`.
fn broadcast(
    node: NodeId,
    now: Time,
    graph: &PulseGraph,
    behaviors: &[LinkBehavior],
    delays: &hex_core::delay::ResolvedDelays,
    q: &mut EventQueue<Ev>,
    rng: &mut SimRng,
) {
    for &l in graph.out_links(node) {
        if behaviors[l as usize] == LinkBehavior::Correct {
            let d = delays.sample(l, rng);
            q.push(now + d, Ev::Deliver { link: l });
        }
    }
}

/// A stuck-at-1 in-port re-asserts its memory flag the instant it was
/// cleared.
#[allow(clippy::too_many_arguments)]
fn refresh_stuck_one(
    node: NodeId,
    port: u8,
    now: Time,
    graph: &PulseGraph,
    cfg: &SimConfig,
    behaviors: &[LinkBehavior],
    states: &mut [NodeState],
    q: &mut EventQueue<Ev>,
    rng: &mut SimRng,
) {
    let l = graph.in_links(node)[port as usize];
    if behaviors[l as usize] != LinkBehavior::StuckOne {
        return;
    }
    if let Some(epoch) = states[node as usize].set_flag(port) {
        let dur = rng.duration_in(cfg.timing.link.lo, cfg.timing.link.hi);
        q.push(
            now + dur,
            Ev::LinkTimeout { node, port, epoch },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hex_core::{HexGrid, NodeFault, D_MINUS, D_PLUS};
    use hex_des::Schedule;

    fn zero_schedule(w: u32) -> Schedule {
        Schedule::single_pulse(vec![Time::ZERO; w as usize])
    }

    #[test]
    fn fault_free_wave_triggers_everyone_once() {
        let grid = HexGrid::new(10, 8);
        let trace = simulate(grid.graph(), &zero_schedule(8), &SimConfig::fault_free(), 1);
        for n in grid.graph().node_ids() {
            assert_eq!(
                trace.fires[n as usize].len(),
                1,
                "node {:?} fired {} times",
                grid.coord_of(n),
                trace.fires[n as usize].len()
            );
        }
    }

    #[test]
    fn wave_respects_delay_bounds_per_layer() {
        let grid = HexGrid::new(10, 8);
        let trace = simulate(grid.graph(), &zero_schedule(8), &SimConfig::fault_free(), 2);
        for layer in 1..=10u32 {
            for col in 0..8 {
                let n = grid.node(layer, col as i64);
                let t = trace.fires[n as usize][0].0;
                // A node at layer ℓ cannot fire before ℓ·d- nor after the
                // fault-free upper envelope 2ℓ·d+ (Lemma 3's induction).
                assert!(t >= Time::ZERO + D_MINUS.times(layer as i64));
                assert!(t <= Time::ZERO + D_PLUS.times(2 * layer as i64));
            }
        }
    }

    #[test]
    fn layer1_triggering_causes_are_central_with_zero_skew() {
        // With all sources firing at 0 and the first wave, layer-1 nodes are
        // triggered by their two lower neighbors (the side neighbors fire no
        // earlier), i.e. centrally (or via a pair involving a lower port).
        let grid = HexGrid::new(3, 6);
        let trace = simulate(grid.graph(), &zero_schedule(6), &SimConfig::fault_free(), 3);
        for col in 0..6 {
            let n = grid.node(1, col as i64);
            let (_, cause) = trace.fires[n as usize][0];
            assert_ne!(cause, TriggerCause::Source);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let grid = HexGrid::new(8, 6);
        let cfg = SimConfig::fault_free();
        let t1 = simulate(grid.graph(), &zero_schedule(6), &cfg, 42);
        let t2 = simulate(grid.graph(), &zero_schedule(6), &cfg, 42);
        assert_eq!(t1.fires, t2.fires);
        let t3 = simulate(grid.graph(), &zero_schedule(6), &cfg, 43);
        assert_ne!(t1.fires, t3.fires);
    }

    #[test]
    fn fixed_delays_give_exact_wave() {
        // With every delay exactly d+, node (ℓ, i) fires at exactly ℓ·d+.
        let grid = HexGrid::new(6, 5);
        let cfg = SimConfig {
            delays: DelayModel::Fixed(D_PLUS),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &zero_schedule(5), &cfg, 7);
        for layer in 0..=6u32 {
            for col in 0..5 {
                let n = grid.node(layer, col as i64);
                assert_eq!(
                    trace.fires[n as usize][0].0,
                    Time::ZERO + D_PLUS.times(layer as i64)
                );
            }
        }
    }

    #[test]
    fn fail_silent_node_leaves_neighbors_alive() {
        let grid = HexGrid::new(10, 8);
        let victim = grid.node(3, 4);
        let cfg = SimConfig {
            faults: FaultPlan::none().with_node(victim, NodeFault::FailSilent),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &zero_schedule(8), &cfg, 11);
        // Faulty node records nothing.
        assert!(trace.fires[victim as usize].is_empty());
        // Everyone else still fires exactly once (Condition 1 holds for a
        // single fault).
        for n in grid.graph().node_ids() {
            if n != victim {
                assert_eq!(trace.fires[n as usize].len(), 1, "node {:?}", grid.coord_of(n));
            }
        }
    }

    #[test]
    fn two_adjacent_crashes_starve_common_upper_neighbor() {
        // Section 3.2: "two adjacent crash failures on some layer just
        // effectively crash their common neighbor in the layer above".
        // (2,3) and (2,4) are the lower-left/lower-right in-neighbors of
        // (3,3). With both silent, (3,3) can still be saved by left/right
        // support... but if we also keep the wave from the sides it cannot.
        // Use a narrow wave: actually with full-width wave the side
        // neighbors DO save (3,3) via (left ∧ lower-left)? No: lower-left
        // (2,3) is dead, so pairs (0,1),(1,2),(2,3) all involve a dead lower
        // port except (left, lower-left) = (0,1) with port 1 dead and
        // (lower-right, right) = (2,3) with port 2 dead. All three guard
        // pairs include a lower port — so (3,3) can never fire. This
        // violates Condition 1 (two faulty in-neighbors) and demonstrates
        // exactly the effective-crash the paper describes.
        let grid = HexGrid::new(6, 8);
        let a = grid.node(2, 3);
        let b = grid.node(2, 4);
        let starved = grid.node(3, 3);
        let cfg = SimConfig {
            faults: FaultPlan::none()
                .with_nodes(&[a, b], NodeFault::FailSilent),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &zero_schedule(8), &cfg, 13);
        assert!(trace.fires[starved as usize].is_empty(), "(3,3) should starve");
        // But the pulse still reaches the top layer everywhere else: the
        // wave flows around the hole.
        for col in 0..8 {
            let n = grid.node(6, col as i64);
            assert_eq!(trace.fires[n as usize].len(), 1);
        }
    }

    #[test]
    fn stuck_one_links_alone_do_not_trigger() {
        // A single Byzantine in-neighbor (even stuck-1 on all links) cannot
        // make a correct node fire: the guard needs two adjacent flags and
        // only one port is faulty (Condition 1 with f = 1).
        let grid = HexGrid::new(4, 6);
        let byz = grid.node(1, 2);
        let cfg = SimConfig {
            faults: FaultPlan::none().with_node(byz, NodeFault::Byzantine),
            timing: Timing::paper_scenario_iii(),
            // No pulses at all: sources never fire.
            ..SimConfig::fault_free()
        };
        let empty = Schedule::new(vec![Vec::new(); 6]);
        let cfg = SimConfig {
            horizon: Some(Time::from_ns(500.0)),
            ..cfg
        };
        let trace = simulate(grid.graph(), &empty, &cfg, 17);
        for n in grid.graph().node_ids() {
            assert!(
                trace.fires[n as usize].is_empty(),
                "node {:?} fired spuriously",
                grid.coord_of(n)
            );
        }
    }

    #[test]
    fn multi_pulse_clean_run_fires_once_per_pulse() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(6, 6);
        let mut rng = SimRng::seed_from_u64(5);
        let train = PulseTrain::new(Scenario::Zero, 4, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 19);
        for n in grid.graph().node_ids() {
            assert_eq!(trace.fires[n as usize].len(), 4, "node {:?}", grid.coord_of(n));
        }
    }

    #[test]
    fn all_flags_set_fires_spurious_pulse_then_recovers() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(5, 6);
        let mut rng = SimRng::seed_from_u64(31);
        let train = PulseTrain::new(Scenario::Zero, 6, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            init: InitState::AllFlagsSet,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 37);
        // Every forwarder fires the spurious pulse at exactly time 0 (its
        // guard is satisfied by the corrupted flags)...
        for n in grid.graph().node_ids() {
            if grid.graph().role(n) == Role::Forwarder {
                assert_eq!(trace.fires[n as usize][0].0, Time::ZERO, "node {n}");
            }
        }
        // ...and still settles to exactly one firing per real pulse: 6
        // scheduled + 1 spurious.
        for n in grid.graph().node_ids() {
            if grid.graph().role(n) == Role::Forwarder {
                let count = trace.fires[n as usize].len();
                assert!(
                    (6..=7).contains(&count),
                    "node {n} fired {count} times (expected 6 real + ≤1 spurious)"
                );
            }
        }
    }

    #[test]
    fn all_asleep_misses_first_pulse_but_recovers() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(5, 6);
        let mut rng = SimRng::seed_from_u64(41);
        let train = PulseTrain::new(Scenario::Zero, 6, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            init: InitState::AllAsleep,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 43);
        let period = train.period(6);
        for n in grid.graph().node_ids() {
            if grid.graph().role(n) != Role::Forwarder {
                continue;
            }
            let fires = &trace.fires[n as usize];
            // The fabric may lose the pulse(s) that arrive while asleep but
            // must fire regularly afterwards: at least the last 4 pulses,
            // never more than one firing per pulse window.
            assert!(
                (4..=6).contains(&fires.len()),
                "node {n} fired {} times",
                fires.len()
            );
            for w in fires.windows(2) {
                let gap = w[1].0 - w[0].0;
                assert!(
                    gap > period / 2,
                    "node {n}: double firing within one pulse window"
                );
            }
        }
    }

    #[test]
    fn arbitrary_init_stabilizes_to_once_per_pulse() {
        use hex_clock::{PulseTrain, Scenario};
        let grid = HexGrid::new(5, 6);
        let mut rng = SimRng::seed_from_u64(23);
        let train = PulseTrain::new(Scenario::Zero, 8, Duration::from_ns(300.0));
        let sched = train.generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            init: InitState::Arbitrary,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 29);
        // After the first few pulses every node must fire regularly: count
        // fires in the second half of the run.
        let period = train.period(6);
        let half = sched.t_min(4).unwrap();
        for n in grid.graph().node_ids() {
            if grid.graph().role(n) == Role::Source {
                continue;
            }
            let late: Vec<Time> = trace.fires[n as usize]
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| t >= half)
                .collect();
            assert!(
                late.len() >= 3 && late.len() <= 5,
                "node {:?} fired {} times after stabilization",
                grid.coord_of(n),
                late.len()
            );
            for w in late.windows(2) {
                let gap = w[1] - w[0];
                assert!(
                    gap > period / 2 && gap < period * 2,
                    "irregular gap {gap:?} at node {:?}",
                    grid.coord_of(n)
                );
            }
        }
    }
}
