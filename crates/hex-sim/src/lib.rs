//! # hex-sim — event-driven execution of HEX pulse propagation
//!
//! This crate replaces the paper's ModelSim/VHDL testbench (Section 4.1): it
//! binds the pure state machines of `hex-core` to the discrete-event engine
//! of `hex-des` and provides everything the evaluation needs:
//!
//! * [`engine::simulate`] — run one configuration: delay control (random or
//!   deterministic per link), fault injection (Byzantine / fail-silent nodes
//!   and stuck-at links), arbitrary initial states for self-stabilization
//!   experiments, and multi-pulse layer-0 schedules;
//! * [`engine::SimScratch`] / [`engine::simulate_into`] — the reusable
//!   per-worker arena behind the batch paths: event queue, node states,
//!   trace and view buffers are recycled across runs, byte-identically to
//!   fresh allocations;
//! * [`trace::Trace`] — the recorded triggering times `t^(k)_{ℓ,i}` with
//!   their trigger causes (left / central / right, Definition 1);
//! * [`trace::PulseView`] / [`trace::assign_pulses`] — the per-pulse
//!   triggering-time matrices the paper's statistics are computed from
//!   (the materialized reference path);
//! * [`observe::RunObserver`] / [`observe::PulseBinner`] — the streaming
//!   extraction path: the engine's fire-recording hook as a sealed
//!   abstraction, with an observer that bins firings to pulses online so
//!   batch statistics never materialize traces or view matrices
//!   ([`engine::simulate_observed_into`], `RunSpec::fold_observed`);
//! * [`spec::RunSpec`] — the declarative experiment vocabulary: grid
//!   shape, layer-0 scenario, fault regime, Table-3 timing, init states,
//!   pulse count and per-run seed policy in one buildable description;
//! * [`batch`] — an embarrassingly-parallel batch runner (`std::thread::
//!   scope` workers, work stealing, deterministic per-run seeding) for the
//!   250-run experiment suites, with a streaming [`batch::run_batch_fold`]
//!   map+reduce path that never materializes a whole batch;
//! * [`shard`] — intra-run parallelism: one simulation split into
//!   lockstep column tiles ([`SimConfig::shards`](engine::SimConfig) /
//!   `HEX_SHARDS`), exchanging boundary events at conservative time-window
//!   barriers, byte-identical to the serial engine;
//! * [`vcd`] — waveform export: render any trace as an IEEE-1364 VCD
//!   document for GTKWave-style inspection (the ModelSim-waveform
//!   equivalent of this reproduction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod canon;
pub mod engine;
pub mod invariants;
pub mod knobs;
pub mod observe;
pub mod shard;
pub mod soa;
pub mod spec;
pub mod trace;
pub mod vcd;

pub use batch::{run_batch, run_batch_fold, run_batch_fold_with, run_batch_with, Reducer};
pub use engine::{
    simulate, simulate_into, simulate_observed_into, InitState, QueuePolicy, SimConfig, SimScratch,
};
pub use observe::{PulseBinner, RunObserver};
pub use spec::{FaultRegime, RunSpec, RunView, TimingPolicy};
pub use trace::{assign_pulses, assign_pulses_into, PulseView, Trace};
pub use vcd::{vcd_document, VcdOptions};
