//! Streaming run observers: the engine's fire-recording path as a sealed
//! abstraction.
//!
//! Historically every statistic flowed through the same funnel: the engine
//! recorded all fires into a [`Trace`](crate::Trace), the trace was
//! reshaped into per-pulse [`PulseView`](crate::PulseView) matrices, and
//! `hex-analysis` folded the matrices into skew samples and stabilization
//! estimates. For sweep-style workloads the matrices are pure intermediate
//! state — the paper's headline numbers are *statistics over pulses*, not
//! traces — so this module lets the engine stream each fire directly into
//! an observer instead:
//!
//! * [`RunObserver`] — the sealed per-fire hook the event loop is
//!   monomorphized over (one instantiation per queue policy × observer, no
//!   per-event dispatch);
//! * [`PulseBinner`] — the production observer: bins each firing to its
//!   pulse **online**, exactly replicating the post-hoc assignment of
//!   [`assign_pulses`](crate::assign_pulses) (nearest expected time,
//!   first-fire-wins, extras counted as spurious) without ever holding a
//!   trace or a matrix.
//!
//! The trait is **sealed** because the byte-equality walls (observer-backed
//! statistics identical to the materialized `PulseView` path, across all
//! queue policies and thread counts) only cover the observers defined here.
//!
//! ```
//! use hex_clock::Scenario;
//! use hex_sim::{RunSpec, PulseBinner};
//!
//! let spec = RunSpec::grid(6, 5).runs(2).seed(7).scenario(Scenario::Zero);
//! let grid = spec.hex_grid();
//! let binner: PulseBinner = spec.run_one_observed(&grid, 0);
//! assert_eq!(binner.pulses(), 1);
//! // Every node's firing time is available without a PulseView detour.
//! for layer in 0..=6 {
//!     for col in 0..5i64 {
//!         assert!(binner.grid_time(0, layer, col).is_some());
//!     }
//! }
//! ```

use hex_core::{HexGrid, NodeId, TriggerCause};
use hex_des::{Duration, Schedule, Time};

pub(crate) mod sealed {
    /// Only observers covered by the observer-equivalence walls may
    /// implement [`super::RunObserver`].
    pub trait Sealed {}
}

/// A per-fire hook the engine's event loop is monomorphized over (sealed;
/// see the [module docs](self)).
///
/// [`on_fire`](RunObserver::on_fire) is called exactly where the trace
/// path records a firing: once per (node, time, cause) firing record, in
/// event order, and never for faulty nodes.
pub trait RunObserver: sealed::Sealed {
    /// Observe one firing.
    fn on_fire(&mut self, node: NodeId, at: Time, cause: TriggerCause);
}

/// Observer that streams fires into per-node, per-pulse first-fire slots —
/// the online twin of [`assign_pulses`](crate::assign_pulses) (multi-pulse
/// runs) and
/// [`PulseView::from_single_pulse`](crate::PulseView::from_single_pulse)
/// (single-pulse runs).
///
/// The slot layout is a flat node-major buffer reused across runs (it
/// lives in [`SimScratch`](crate::SimScratch)); [`PulseBinner::prepare`]
/// makes it observationally identical to a fresh binner while recycling
/// every allocation, like the rest of the scratch.
#[derive(Debug, Clone, Default)]
pub struct PulseBinner {
    /// Pulses per run (≥ 1).
    pulses: usize,
    /// Grid shape recorded at prepare time.
    length: u32,
    width: u32,
    /// First firing time binned to `slots[node · pulses + k]`, else `None`.
    slots: Vec<Option<Time>>,
    /// Per-column expected layer-0 times, column-major:
    /// `colbase[col · pulses + k]` (multi-pulse runs only).
    colbase: Vec<Time>,
    /// Per-node propagation shift `d_mid · layer` (multi-pulse runs only).
    node_shift: Vec<Duration>,
    /// Per-node column index (multi-pulse runs only).
    node_col: Vec<u32>,
    /// Firings beyond the first binned to an already-claimed slot — the
    /// sum of [`PulseView::spurious`](crate::PulseView::spurious) over the
    /// run's views.
    spurious: usize,
    /// Faulty node ids of the observed run (ascending).
    faulty: Vec<NodeId>,
}

impl PulseBinner {
    /// An empty binner; buffers are grown on first
    /// [`prepare`](PulseBinner::prepare) and reused after.
    pub fn new() -> Self {
        PulseBinner::default()
    }

    /// Reset for one run of `schedule` on `grid`, reusing buffer capacity:
    /// afterwards the binner is observationally identical to a fresh one.
    ///
    /// `d_mid` is the midpoint link delay used by the expected-time model
    /// (the same value [`assign_pulses`](crate::assign_pulses) takes);
    /// `faulty` is the run's ascending faulty node set.
    pub fn prepare(
        &mut self,
        grid: &HexGrid,
        schedule: &Schedule,
        d_mid: Duration,
        faulty: &[NodeId],
    ) {
        let n = grid.node_count();
        self.pulses = schedule.pulses().max(1);
        self.length = grid.length();
        self.width = grid.width();
        self.slots.clear();
        self.slots.resize(n * self.pulses, None);
        self.spurious = 0;
        self.faulty.clear();
        self.faulty.extend_from_slice(faulty);

        if self.pulses <= 1 {
            // Single-pulse fast path: no expected-time model needed.
            self.colbase.clear();
            self.node_shift.clear();
            self.node_col.clear();
            return;
        }

        // Per-pulse fallback base times for mute sources, exactly as
        // `assign_pulses` derives them.
        let w = self.width as usize;
        self.colbase.clear();
        self.colbase.reserve(w * self.pulses);
        for col in 0..w {
            let col_sched = schedule.source(col);
            for k in 0..self.pulses {
                let b = col_sched
                    .get(k)
                    .copied()
                    .unwrap_or_else(|| schedule.t_min(k).unwrap_or(Time::ZERO));
                self.colbase.push(b);
            }
        }

        // Per-node binning tables (shape-dependent only, but rebuilt per
        // run: O(nodes), dwarfed by the run itself).
        self.node_shift.clear();
        self.node_col.clear();
        self.node_shift.reserve(n);
        self.node_col.reserve(n);
        for node in grid.graph().node_ids() {
            let c = grid.coord_of(node);
            self.node_shift.push(d_mid.times(c.layer as i64));
            self.node_col.push(c.col);
        }
    }

    /// Pulses per run this binner was prepared for (≥ 1).
    pub fn pulses(&self) -> usize {
        self.pulses
    }

    /// Grid length `L` of the observed run.
    pub fn length(&self) -> u32 {
        self.length
    }

    /// Grid width `W` of the observed run.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Firings binned to an already-claimed `(node, pulse)` slot — equal to
    /// the sum of `spurious` over the run's materialized views.
    pub fn spurious(&self) -> usize {
        self.spurious
    }

    /// The raw node-major slot buffer (`slots[node · pulses + k]`): the
    /// complete binned observation in one flat view, for walls that pin
    /// two observed runs byte-identical without probing slot by slot.
    pub fn slots(&self) -> &[Option<Time>] {
        &self.slots
    }

    /// Faulty node ids of the observed run (ascending).
    pub fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    /// The first firing time binned to pulse `pulse` of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `pulse >= self.pulses()` — the node-major slot layout
    /// would otherwise alias another node's slot in-bounds, so an
    /// out-of-range pulse must fail loudly here, exactly like indexing
    /// `views[pulse]` does on the materialized path.
    #[inline]
    pub fn time(&self, pulse: usize, node: NodeId) -> Option<Time> {
        assert!(
            pulse < self.pulses,
            "pulse {pulse} out of range: the observed run recorded only {} pulse(s)",
            self.pulses
        );
        self.slots[node as usize * self.pulses + pulse]
    }

    /// The first firing time binned to pulse `pulse` of grid node
    /// `(layer, col)` (cyclic column, like
    /// [`PulseView::time`](crate::PulseView::time)).
    pub fn grid_time(&self, pulse: usize, layer: u32, col: i64) -> Option<Time> {
        let w = self.width as i64;
        let node = layer * self.width + col.rem_euclid(w) as u32;
        self.time(pulse, node)
    }

    /// Bin one firing: claim the nearest-expected-pulse slot if it is
    /// still free, else count the firing as spurious. Exactly the
    /// per-firing step of [`assign_pulses`](crate::assign_pulses).
    #[inline]
    fn bin(&mut self, node: NodeId, at: Time) {
        let k = if self.pulses <= 1 {
            0
        } else {
            let ix = node as usize;
            // `expected[k] = colbase[k] + shift`; searching the shifted
            // time against the raw column bases is the identical integer
            // comparison sequence, so the chosen pulse matches
            // `assign_pulses`' `expected.binary_search(&time)` bit for
            // bit (including the nearest-neighbor tie-break).
            let adj = at - self.node_shift[ix];
            let base = &self.colbase[self.node_col[ix] as usize * self.pulses..][..self.pulses];
            match base.binary_search(&adj) {
                Ok(k) => k,
                Err(ins) => {
                    if ins == 0 {
                        0
                    } else if ins >= self.pulses {
                        self.pulses - 1
                    } else {
                        let before = adj - base[ins - 1];
                        let after = base[ins] - adj;
                        if before.abs() <= after.abs() {
                            ins - 1
                        } else {
                            ins
                        }
                    }
                }
            }
        };
        let slot = &mut self.slots[node as usize * self.pulses + k];
        if slot.is_none() {
            *slot = Some(at);
        } else {
            self.spurious += 1;
        }
    }
}

impl sealed::Sealed for PulseBinner {}

impl RunObserver for PulseBinner {
    #[inline]
    fn on_fire(&mut self, node: NodeId, at: Time, _cause: TriggerCause) {
        self.bin(node, at);
    }
}

/// The trace-recording observer behind [`simulate`](crate::simulate) /
/// [`simulate_into`](crate::simulate_into): appends each firing to the
/// per-node `fires` records, preserving the engine's historical behavior.
pub(crate) struct FireLog<'a> {
    pub(crate) fires: &'a mut [Vec<(Time, TriggerCause)>],
}

impl sealed::Sealed for FireLog<'_> {}

impl RunObserver for FireLog<'_> {
    #[inline]
    fn on_fire(&mut self, node: NodeId, at: Time, cause: TriggerCause) {
        self.fires[node as usize].push((at, cause));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::assign_pulses;
    use crate::{simulate, InitState, SimConfig};
    use hex_clock::{PulseTrain, Scenario};
    use hex_core::Timing;
    use hex_des::SimRng;

    /// Replaying a recorded trace through the binner reproduces the
    /// post-hoc pulse assignment slot for slot — the unit-level version of
    /// the engine-integrated equality pinned in `spec.rs` and the
    /// workspace walls.
    #[test]
    fn replayed_trace_matches_assign_pulses() {
        let grid = HexGrid::new(5, 6);
        let mut rng = SimRng::seed_from_u64(8);
        let sched = PulseTrain::new(Scenario::RandomDPlus, 4, Duration::from_ns(300.0))
            .generate(6, &mut rng);
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            init: InitState::Arbitrary,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, 21);
        let d_mid = hex_core::DelayRange::paper().mid();
        let views = assign_pulses(&grid, &trace, &sched, d_mid);

        let mut binner = PulseBinner::new();
        binner.prepare(&grid, &sched, d_mid, &[]);
        // Replay in per-node chronological order, like the views consume
        // the trace (binning is per-node, so cross-node order is moot).
        for node in grid.graph().node_ids() {
            for &(at, cause) in &trace.fires[node as usize] {
                binner.on_fire(node, at, cause);
            }
        }

        assert_eq!(binner.pulses(), views.len());
        let mut spurious = 0;
        for (k, v) in views.iter().enumerate() {
            spurious += v.spurious;
            for layer in 0..=grid.length() {
                for col in 0..grid.width() as i64 {
                    assert_eq!(
                        binner.grid_time(k, layer, col),
                        v.time(layer, col),
                        "pulse {k} node ({layer},{col})"
                    );
                }
            }
        }
        assert_eq!(binner.spurious(), spurious);
    }

    /// A dirty binner prepared for a new run is indistinguishable from a
    /// fresh one, whatever shape ran through it before.
    #[test]
    fn prepare_resets_to_fresh_state() {
        let big = HexGrid::new(6, 8);
        let small = HexGrid::new(3, 4);
        let mut rng = SimRng::seed_from_u64(4);
        let multi =
            PulseTrain::new(Scenario::Zero, 3, Duration::from_ns(300.0)).generate(8, &mut rng);
        let single = Schedule::single_pulse(vec![Time::ZERO; 4]);
        let d_mid = hex_core::DelayRange::paper().mid();

        let mut dirty = PulseBinner::new();
        dirty.prepare(&big, &multi, d_mid, &[3, 9]);
        for node in big.graph().node_ids() {
            dirty.on_fire(node, Time::from_ps(node as i64), TriggerCause::Source);
            dirty.on_fire(node, Time::from_ps(node as i64), TriggerCause::Source);
        }
        assert!(dirty.spurious() > 0);

        dirty.prepare(&small, &single, d_mid, &[]);
        let mut fresh = PulseBinner::new();
        fresh.prepare(&small, &single, d_mid, &[]);
        assert_eq!(dirty.pulses(), fresh.pulses());
        assert_eq!(dirty.spurious(), 0);
        assert_eq!(dirty.faulty(), fresh.faulty());
        for node in small.graph().node_ids() {
            assert_eq!(dirty.time(0, node), None);
        }
    }
}
