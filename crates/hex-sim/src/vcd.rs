//! VCD (Value Change Dump) export of simulation traces.
//!
//! The authors inspected HEX executions as ModelSim waveforms; this module
//! is the equivalent exit of our simulator: it renders a [`Trace`] as an
//! IEEE-1364 VCD document that any waveform viewer (GTKWave, Surfer, …)
//! can open. One 1-bit wire per node, grouped into per-layer scopes;
//! a node's wire pulses high for [`VcdOptions::pulse_width`] at every
//! firing. Faulty nodes dump `x` and never change — they are visually
//! distinct from silent-but-correct nodes.
//!
//! A small self-contained parser for the emitted subset
//! ([`VcdDocument::parse`]) supports round-trip tests and lets downstream
//! tooling recover firing times from a dump without re-running the
//! simulation.

use std::fmt::Write as _;

use hex_core::HexGrid;
use hex_des::{Duration, Time};

use crate::trace::Trace;

/// Rendering options for [`vcd_document`].
#[derive(Debug, Clone)]
pub struct VcdOptions {
    /// High time of the firing pulse on each wire. Clamped so a pulse never
    /// overlaps the node's next firing.
    pub pulse_width: Duration,
    /// Name of the top-level `$scope module`.
    pub module: String,
}

impl Default for VcdOptions {
    fn default() -> Self {
        VcdOptions {
            pulse_width: Duration::from_ps(500),
            module: "hex".to_string(),
        }
    }
}

/// Encode a signal index as a VCD identifier code (printable ASCII 33–126,
/// base 94, little-endian).
pub fn id_code(mut ix: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (ix % 94)) as u8 as char);
        ix /= 94;
        if ix == 0 {
            break;
        }
    }
    s
}

/// Render `trace` on `grid` as a VCD document.
pub fn vcd_document(grid: &HexGrid, trace: &Trace, opts: &VcdOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date HEX simulation trace $end");
    let _ = writeln!(out, "$version hexclock vcd exporter $end");
    let _ = writeln!(out, "$timescale 1ps $end");
    let _ = writeln!(out, "$scope module {} $end", opts.module);

    // Declarations: one scope per layer, one wire per node.
    for layer in 0..=grid.length() {
        let _ = writeln!(out, "$scope module layer_{layer} $end");
        for col in 0..grid.width() {
            let n = grid.node(layer, col as i64);
            let _ = writeln!(out, "$var wire 1 {} n{col} $end", id_code(n as usize));
        }
        let _ = writeln!(out, "$upscope $end");
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values.
    let _ = writeln!(out, "$dumpvars");
    for n in grid.graph().node_ids() {
        let v = if trace.is_faulty(n) { 'x' } else { '0' };
        let _ = writeln!(out, "{v}{}", id_code(n as usize));
    }
    let _ = writeln!(out, "$end");

    // Edge list: (time, node, value). Falling edges are clamped to the next
    // firing so pulses never overlap; a fall that would coincide with (or
    // pass) the next rise is dropped (pulses merge).
    let mut edges: Vec<(Time, u32, char)> = Vec::new();
    for n in grid.graph().node_ids() {
        let fires = &trace.fires[n as usize];
        for (k, &(t, _)) in fires.iter().enumerate() {
            edges.push((t, n, '1'));
            let fall = t + opts.pulse_width;
            match fires.get(k + 1) {
                Some(&(next, _)) if fall >= next => {} // merged
                _ => edges.push((fall, n, '0')),
            }
        }
    }
    // Within a timestamp, emit falls before rises so a merged viewer state
    // never glitches low-high-low.
    edges.sort_by_key(|&(t, n, v)| (t, v != '0', n));

    let mut current: Option<Time> = None;
    for (t, n, v) in edges {
        if current != Some(t) {
            let _ = writeln!(out, "#{}", t.ps());
            current = Some(t);
        }
        let _ = writeln!(out, "{v}{}", id_code(n as usize));
    }
    let _ = writeln!(
        out,
        "#{}",
        trace.horizon.ps().max(current.map_or(0, |t| t.ps()))
    );
    out
}

/// A parsed VCD document (the subset emitted by [`vcd_document`]).
#[derive(Debug, Clone, Default)]
pub struct VcdDocument {
    /// `(scope path, wire name, id code)` per declaration, in order.
    pub vars: Vec<(String, String, String)>,
    /// Value changes per id code: `(time ps, value char)`, chronological.
    pub changes: std::collections::BTreeMap<String, Vec<(i64, char)>>,
    /// The declared timescale line (e.g. `1ps`).
    pub timescale: String,
}

impl VcdDocument {
    /// Parse the subset of VCD that [`vcd_document`] emits. Unknown
    /// constructs make this return `None` — it is a validator, not a
    /// general VCD reader.
    pub fn parse(text: &str) -> Option<VcdDocument> {
        let mut doc = VcdDocument::default();
        let mut scopes: Vec<String> = Vec::new();
        let mut now: i64 = 0;
        let mut in_dumpvars = false;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("$timescale") {
                doc.timescale = rest.trim().trim_end_matches("$end").trim().to_string();
                // Multi-line form not emitted; single-line only.
            } else if let Some(rest) = line.strip_prefix("$scope module ") {
                scopes.push(rest.trim_end_matches("$end").trim().to_string());
            } else if line.starts_with("$upscope") {
                scopes.pop()?;
            } else if let Some(rest) = line.strip_prefix("$var wire 1 ") {
                let rest = rest.trim_end_matches("$end").trim();
                let mut parts = rest.split_whitespace();
                let code = parts.next()?.to_string();
                let name = parts.next()?.to_string();
                doc.vars.push((scopes.join("."), name, code));
            } else if line.starts_with("$dumpvars") {
                in_dumpvars = true;
                now = 0;
            } else if line.starts_with("$end") {
                in_dumpvars = false;
            } else if line.starts_with("$date")
                || line.starts_with("$version")
                || line.starts_with("$enddefinitions")
            {
                // header noise
            } else if let Some(t) = line.strip_prefix('#') {
                now = t.parse().ok()?;
            } else {
                let mut chars = line.chars();
                let v = chars.next()?;
                if !matches!(v, '0' | '1' | 'x' | 'z') {
                    return None;
                }
                let code: String = chars.collect();
                if code.is_empty() {
                    return None;
                }
                let at = if in_dumpvars { 0 } else { now };
                doc.changes.entry(code).or_default().push((at, v));
            }
        }
        Some(doc)
    }

    /// Rising-edge times (ps) of the wire with id `code`.
    pub fn rising_edges(&self, code: &str) -> Vec<i64> {
        let mut out = Vec::new();
        let mut prev = '0';
        for &(t, v) in self.changes.get(code).into_iter().flatten() {
            if v == '1' && prev != '1' {
                out.push(t);
            }
            prev = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use hex_core::{FaultPlan, NodeFault};
    use hex_des::Schedule;

    fn small_trace(seed: u64, faults: FaultPlan) -> (HexGrid, Trace) {
        let grid = HexGrid::new(4, 5);
        let sched = Schedule::single_pulse(vec![Time::ZERO; 5]);
        let cfg = SimConfig {
            faults,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &sched, &cfg, seed);
        (grid, trace)
    }

    #[test]
    fn id_codes_unique_and_printable() {
        let mut seen = std::collections::BTreeSet::new();
        for ix in 0..5000 {
            let code = id_code(ix);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code), "duplicate code at {ix}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94).len(), 2);
    }

    #[test]
    fn document_structure() {
        let (grid, trace) = small_trace(1, FaultPlan::none());
        let doc = vcd_document(&grid, &trace, &VcdOptions::default());
        assert!(doc.starts_with("$date"));
        assert!(doc.contains("$timescale 1ps $end"));
        assert!(doc.contains("$scope module hex $end"));
        for layer in 0..=4 {
            assert!(doc.contains(&format!("$scope module layer_{layer} $end")));
        }
        assert!(doc.contains("$enddefinitions $end"));
        // One var per node.
        assert_eq!(doc.matches("$var wire 1 ").count(), grid.node_count());
    }

    #[test]
    fn roundtrip_recovers_fire_times() {
        let (grid, trace) = small_trace(2, FaultPlan::none());
        let text = vcd_document(&grid, &trace, &VcdOptions::default());
        let doc = VcdDocument::parse(&text).expect("parse own output");
        assert_eq!(doc.timescale, "1ps");
        assert_eq!(doc.vars.len(), grid.node_count());
        for n in grid.graph().node_ids() {
            let code = id_code(n as usize);
            let edges = doc.rising_edges(&code);
            let fires: Vec<i64> = trace.fires[n as usize]
                .iter()
                .map(|&(t, _)| t.ps())
                .collect();
            assert_eq!(edges, fires, "node {:?}", grid.coord_of(n));
        }
    }

    #[test]
    fn scopes_name_layers_and_columns() {
        let (grid, trace) = small_trace(3, FaultPlan::none());
        let text = vcd_document(&grid, &trace, &VcdOptions::default());
        let doc = VcdDocument::parse(&text).unwrap();
        let n = grid.node(2, 3);
        let entry = doc
            .vars
            .iter()
            .find(|(_, _, code)| *code == id_code(n as usize))
            .unwrap();
        assert_eq!(entry.0, "hex.layer_2");
        assert_eq!(entry.1, "n3");
    }

    #[test]
    fn faulty_nodes_dump_x_and_stay_silent() {
        let grid0 = HexGrid::new(4, 5);
        let victim = grid0.node(2, 2);
        let (grid, trace) = small_trace(
            4,
            FaultPlan::none().with_node(victim, NodeFault::FailSilent),
        );
        let text = vcd_document(&grid, &trace, &VcdOptions::default());
        let doc = VcdDocument::parse(&text).unwrap();
        let changes = &doc.changes[&id_code(victim as usize)];
        assert_eq!(changes.as_slice(), &[(0, 'x')]);
    }

    #[test]
    fn pulses_do_not_overlap_under_short_separation() {
        // Force merged pulses with an absurd pulse width: every wire must
        // still be monotone 0→1→0 without a 1→1 double rise.
        let (grid, trace) = small_trace(5, FaultPlan::none());
        let opts = VcdOptions {
            pulse_width: Duration::from_ns(10_000.0),
            module: "hex".into(),
        };
        let text = vcd_document(&grid, &trace, &opts);
        let doc = VcdDocument::parse(&text).unwrap();
        for (_, _, code) in &doc.vars {
            let mut prev = '0';
            for &(_, v) in &doc.changes[code] {
                assert_ne!((prev, v), ('1', '1'), "double rise on {code}");
                prev = v;
            }
        }
    }

    #[test]
    fn falling_edges_precede_rising_at_same_timestamp() {
        let (grid, trace) = small_trace(6, FaultPlan::none());
        let _ = grid;
        let text = vcd_document(&grid, &trace, &VcdOptions::default());
        // Within each #t block (after the dump section), no '0'-change may
        // follow a '1'-change.
        let mut in_changes = false;
        let mut saw_rise = false;
        for line in text.lines() {
            if line.starts_with('#') {
                in_changes = true;
                saw_rise = false;
            } else if in_changes {
                if line.starts_with('1') {
                    saw_rise = true;
                } else if line.starts_with('0') {
                    assert!(!saw_rise, "fall after rise in block: {line}");
                }
            }
        }
    }
}
