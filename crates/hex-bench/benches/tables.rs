//! Reduced-run versions of the Table 1 / Table 2 pipelines, keeping
//! `cargo bench` an honest end-to-end exercise of the experiment drivers.
//! Both pipelines run through `RunSpec` + the streaming `batch_skews`
//! reduction, and the materializing path is timed next to it so the
//! streaming win stays measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_bench::{batch_skews, batch_skews_from_views, FaultRegime, RunSpec};
use hex_clock::Scenario;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    let exp = RunSpec::paper().runs(10).scenario(Scenario::RandomDPlus);
    g.bench_with_input(
        BenchmarkId::new("table1_pipeline", "10_runs"),
        &exp,
        |b, exp| b.iter(|| batch_skews(exp, 0).cumulated.intra.len()),
    );
    g.bench_with_input(
        BenchmarkId::new("table1_pipeline_materialized", "10_runs"),
        &exp,
        |b, exp| {
            b.iter(|| {
                let grid = exp.hex_grid();
                let views = exp.run_batch();
                batch_skews_from_views(&grid, &views, 0)
                    .cumulated
                    .intra
                    .len()
            })
        },
    );
    let byz = exp.clone().faults(FaultRegime::Byzantine(1));
    g.bench_with_input(
        BenchmarkId::new("table2_pipeline", "10_runs"),
        &byz,
        |b, byz| b.iter(|| batch_skews(byz, 0).cumulated.intra.len()),
    );
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
