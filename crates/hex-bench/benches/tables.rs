//! Reduced-run versions of the Table 1 / Table 2 pipelines, keeping
//! `cargo bench` an honest end-to-end exercise of the experiment drivers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_bench::{batch_skews, single_pulse_batch, Experiment, FaultRegime};
use hex_clock::Scenario;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    let exp = Experiment {
        runs: 10,
        ..Experiment::paper()
    };
    g.bench_with_input(
        BenchmarkId::new("table1_pipeline", "10_runs"),
        &exp,
        |b, exp| {
            b.iter(|| {
                let views = single_pulse_batch(exp, Scenario::RandomDPlus, FaultRegime::None);
                batch_skews(exp, &views, 0).cumulated.intra.len()
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("table2_pipeline", "10_runs"),
        &exp,
        |b, exp| {
            b.iter(|| {
                let views =
                    single_pulse_batch(exp, Scenario::RandomDPlus, FaultRegime::Byzantine(1));
                batch_skews(exp, &views, 0).cumulated.intra.len()
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
