//! Intra-run tile-shard scaling: one simulation run split across column
//! tiles (`SimConfig::shards`), measured on grids far beyond the paper's
//! 50×20 — the regime the sharded engine exists for. The committed
//! `BENCH_shard_scaling.json` snapshot records these rows together with
//! the host's core count: shard speedup is bounded by physical
//! parallelism (`shards=1` is the serial engine; on a single-core host
//! every extra shard is pure coordination overhead, which is exactly
//! what the snapshot then documents).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_bench::zero_schedule;
use hex_core::HexGrid;
use hex_sim::{simulate_into, SimConfig, SimScratch};

/// Fault-free single pulse on a 400×160 grid (64 000 nodes, 16× the
/// serial ceiling the roadmap called out) at 1/2/4/8 tiles, plus the
/// paper-scale 100×40 for cross-reference against the `des_engine` rows.
fn bench_shard_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_scaling");
    g.sample_size(10);
    for (l, w) in [(100u32, 40u32), (400, 160)] {
        let grid = HexGrid::new(l, w);
        let sched = zero_schedule(w);
        for shards in [1usize, 2, 4, 8] {
            let cfg = SimConfig {
                shards,
                ..SimConfig::fault_free()
            };
            g.bench_with_input(
                BenchmarkId::new(format!("single_pulse_shards_{shards}"), format!("{l}x{w}")),
                &grid,
                |b, grid| {
                    let mut scratch = SimScratch::new();
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed).total_fires()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
