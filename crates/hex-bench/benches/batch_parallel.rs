//! Batch-runner scaling: the experiment loop at 1, 2, 4 and all available
//! worker threads (`std::thread::scope` work stealing over run indices),
//! plus the streaming fold path — with and without per-worker `SimScratch`
//! reuse — at full parallelism.
//!
//! `HEX_RUNS` overrides the batch size (default 64); CI smokes the scratch
//! path with `HEX_RUNS=2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_bench::zero_schedule;
use hex_core::HexGrid;
use hex_sim::batch::{default_threads, run_batch_fold_with, Reducer};
use hex_sim::{
    run_batch, run_batch_fold, simulate, simulate_into, QueuePolicy, SimConfig, SimScratch,
};

struct SumFires;
impl Reducer<usize> for SumFires {
    type Acc = usize;
    fn empty(&self) -> usize {
        0
    }
    fn fold(&self, acc: &mut usize, _run: usize, fires: usize) {
        *acc += fires;
    }
    fn merge(&self, left: usize, right: usize) -> usize {
        left + right
    }
}

fn bench_batch(c: &mut Criterion) {
    let runs: usize = std::env::var("HEX_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut g = c.benchmark_group(format!("batch_{runs}_runs"));
    g.sample_size(10);
    let grid = HexGrid::new(30, 16);
    let sched = zero_schedule(16);
    let cfg = SimConfig::fault_free();
    let all = default_threads();
    let mut threads: Vec<usize> = vec![1, 2, 4, all];
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| {
                run_batch(runs, t, |run| {
                    simulate(grid.graph(), &sched, &cfg, run as u64).total_fires()
                })
            })
        });
    }
    g.bench_with_input(BenchmarkId::new("fold_threads", all), &all, |b, &t| {
        b.iter(|| {
            run_batch_fold(
                runs,
                t,
                |run| simulate(grid.graph(), &sched, &cfg, run as u64).total_fires(),
                &SumFires,
            )
        })
    });
    // The streaming fold with one SimScratch per worker — the hot
    // configuration of every RunSpec-driven sweep.
    g.bench_with_input(BenchmarkId::new("fold_scratch_threads", all), &all, |b, &t| {
        b.iter(|| {
            run_batch_fold_with(
                runs,
                t,
                SimScratch::new,
                || 0usize,
                |scratch, acc, run| {
                    *acc += simulate_into(scratch, grid.graph(), &sched, &cfg, run as u64)
                        .total_fires();
                },
                |left, right| left + right,
            )
        })
    });
    // The same sweep under the runner-up queue policy (`fold_scratch`
    // above runs the default calendar ring): the batch-level leg of the
    // three-way `QueuePolicy` ablation (identical output).
    let alt_cfg = SimConfig {
        queue: QueuePolicy::BinaryHeap,
        ..SimConfig::fault_free()
    };
    g.bench_with_input(
        BenchmarkId::new("fold_scratch_binary_heap_threads", all),
        &all,
        |b, &t| {
            b.iter(|| {
                run_batch_fold_with(
                    runs,
                    t,
                    SimScratch::new,
                    || 0usize,
                    |scratch, acc, run| {
                        *acc += simulate_into(scratch, grid.graph(), &sched, &alt_cfg, run as u64)
                            .total_fires();
                    },
                    |left, right| left + right,
                )
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
