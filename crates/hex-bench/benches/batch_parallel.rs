//! Batch-runner scaling: the experiment loop at 1, 2, 4 and all available
//! worker threads (`std::thread::scope` work stealing over run indices),
//! plus the streaming fold path — with and without per-worker `SimScratch`
//! reuse — at full parallelism, and the extraction-path ablation
//! (materialized `PulseView` reduction vs the streaming observer fold)
//! for both the skew and the stabilization workloads.
//!
//! `HEX_RUNS` overrides the batch size (default 64); CI smokes the scratch
//! path with `HEX_RUNS=2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_analysis::reduce::{ObservedStabilizationReducer, StabilizationReducer};
use hex_analysis::stabilization::Criterion as StabCriterion;
use hex_bench::{zero_schedule, ObservedSkewReducer, RunSpec, SkewReducer};
use hex_core::{HexGrid, D_PLUS};
use hex_sim::batch::{default_threads, run_batch_fold_with, Reducer};
use hex_sim::{
    run_batch, run_batch_fold, simulate, simulate_into, InitState, QueuePolicy, SimConfig,
    SimScratch,
};

struct SumFires;
impl Reducer<usize> for SumFires {
    type Acc = usize;
    fn empty(&self) -> usize {
        0
    }
    fn fold(&self, acc: &mut usize, _run: usize, fires: usize) {
        *acc += fires;
    }
    fn merge(&self, left: usize, right: usize) -> usize {
        left + right
    }
}

fn bench_batch(c: &mut Criterion) {
    let runs: usize = hex_sim::knobs::parsed("HEX_RUNS", "a number").unwrap_or(64);
    let mut g = c.benchmark_group(format!("batch_{runs}_runs"));
    g.sample_size(10);
    let grid = HexGrid::new(30, 16);
    let sched = zero_schedule(16);
    let cfg = SimConfig::fault_free();
    let all = default_threads();
    let mut threads: Vec<usize> = vec![1, 2, 4, all];
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| {
                run_batch(runs, t, |run| {
                    simulate(grid.graph(), &sched, &cfg, run as u64).total_fires()
                })
            })
        });
    }
    g.bench_with_input(BenchmarkId::new("fold_threads", all), &all, |b, &t| {
        b.iter(|| {
            run_batch_fold(
                runs,
                t,
                |run| simulate(grid.graph(), &sched, &cfg, run as u64).total_fires(),
                &SumFires,
            )
        })
    });
    // The streaming fold with one SimScratch per worker — the hot
    // configuration of every RunSpec-driven sweep.
    g.bench_with_input(
        BenchmarkId::new("fold_scratch_threads", all),
        &all,
        |b, &t| {
            b.iter(|| {
                run_batch_fold_with(
                    runs,
                    t,
                    SimScratch::new,
                    || 0usize,
                    |scratch, acc, run| {
                        *acc += simulate_into(scratch, grid.graph(), &sched, &cfg, run as u64)
                            .total_fires();
                    },
                    |left, right| left + right,
                )
            })
        },
    );
    // The same sweep under the runner-up queue policy (`fold_scratch`
    // above runs the default calendar ring): the batch-level leg of the
    // three-way `QueuePolicy` ablation (identical output).
    let alt_cfg = SimConfig {
        queue: QueuePolicy::BinaryHeap,
        ..SimConfig::fault_free()
    };
    g.bench_with_input(
        BenchmarkId::new("fold_scratch_binary_heap_threads", all),
        &all,
        |b, &t| {
            b.iter(|| {
                run_batch_fold_with(
                    runs,
                    t,
                    SimScratch::new,
                    || 0usize,
                    |scratch, acc, run| {
                        *acc += simulate_into(scratch, grid.graph(), &sched, &alt_cfg, run as u64)
                            .total_fires();
                    },
                    |left, right| left + right,
                )
            })
        },
    );
    g.finish();

    // The extraction-path ablation the observer redesign is judged by:
    // the same sweep reduced through the materialized PulseView pipeline
    // (trace → matrices → collect_skews) vs the streaming observer fold
    // (fires binned online, statistics straight off the binner slots).
    // Identical results — pinned by the workspace observer walls — so the
    // delta is pure extraction cost.
    let mut g = c.benchmark_group(format!("extract_{runs}_runs"));
    g.sample_size(10);
    let skew_spec = RunSpec::grid(30, 16).runs(runs).threads(1).seed(7);
    let skew_grid = skew_spec.hex_grid();
    g.bench_function(BenchmarkId::new("skews_view", 1), |b| {
        b.iter(|| {
            skew_spec
                .fold(&SkewReducer::new(&skew_grid, 0))
                .cumulated
                .intra
                .len()
        })
    });
    g.bench_function(BenchmarkId::new("skews_observed", 1), |b| {
        b.iter(|| {
            skew_spec
                .fold_observed(&ObservedSkewReducer::new(&skew_grid, 0))
                .cumulated
                .intra
                .len()
        })
    });
    // The stabilization workload: multi-pulse, corrupted init — the
    // regime where the materialized path refills one matrix per pulse
    // per run.
    let stab_spec = RunSpec::grid(12, 8)
        .runs(runs)
        .threads(1)
        .seed(7)
        .pulses(4)
        .init(InitState::Arbitrary);
    let stab_grid = stab_spec.hex_grid();
    let criteria: Vec<StabCriterion> = (1..=3u8)
        .map(|c| StabCriterion::class(c, D_PLUS, stab_spec.length, |_| D_PLUS))
        .collect();
    g.bench_function(BenchmarkId::new("stab_view", 1), |b| {
        b.iter(|| {
            stab_spec
                .fold(&StabilizationReducer::new(&stab_grid, &criteria, 0))
                .len()
        })
    });
    g.bench_function(BenchmarkId::new("stab_observed", 1), |b| {
        b.iter(|| {
            stab_spec
                .fold_observed(&ObservedStabilizationReducer::new(&stab_grid, &criteria, 0))
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
