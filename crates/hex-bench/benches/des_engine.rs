//! Engine microbenchmarks: event-queue throughput and single-pulse
//! simulation cost as a function of grid size, including the three-way
//! `QueuePolicy` ablation on the flagship `single_pulse/grid/100x40`
//! workload (recorded by `scripts/bench_snapshot.sh` into
//! `BENCH_single_pulse.json`; the winner ships as the engine default).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hex_bench::zero_schedule;
use hex_core::HexGrid;
use hex_des::{EventQueue, Time};
use hex_sim::{simulate, simulate_into, QueuePolicy, SimConfig, SimScratch};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter_batched(
                EventQueue::<u64>::new,
                |mut q| {
                    // Pseudo-random but deterministic times.
                    let mut x = 0x9E3779B97F4A7C15u64;
                    for i in 0..n {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        q.push(Time::from_ps((x % 1_000_000) as i64), i as u64);
                    }
                    let mut acc = 0u64;
                    while let Some(e) = q.pop() {
                        acc = acc.wrapping_add(e.payload);
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_single_pulse(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_pulse");
    g.sample_size(20);
    for (l, w) in [(20u32, 20u32), (50, 20), (100, 40)] {
        let grid = HexGrid::new(l, w);
        let sched = zero_schedule(w);
        let cfg = SimConfig::fault_free();
        g.bench_with_input(
            BenchmarkId::new("grid", format!("{l}x{w}")),
            &grid,
            |b, grid| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    simulate(grid.graph(), &sched, &cfg, seed).total_fires()
                })
            },
        );
        // The same run through a persistent SimScratch: the fresh-vs-reuse
        // delta is the allocation cost the batch paths amortize away.
        g.bench_with_input(
            BenchmarkId::new("grid_scratch", format!("{l}x{w}")),
            &grid,
            |b, grid| {
                let mut scratch = SimScratch::new();
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed).total_fires()
                })
            },
        );
        // The queue-policy ablation on the scratch path (the batch hot
        // configuration): identical output, different future event list.
        // `grid_scratch` above runs the engine default; these rows name
        // each policy explicitly so the snapshot JSON is self-describing.
        for policy in QueuePolicy::ALL {
            let cfg = SimConfig {
                queue: policy,
                ..SimConfig::fault_free()
            };
            g.bench_with_input(
                BenchmarkId::new(
                    format!("grid_scratch_{}", policy.label()),
                    format!("{l}x{w}"),
                ),
                &grid,
                |b, grid| {
                    let mut scratch = SimScratch::new();
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed).total_fires()
                    })
                },
            );
        }
    }
    g.finish();
}

/// The stabilization regime — Table 3 (iii) timeouts, arbitrary init, an
/// 8-pulse train — under each queue policy. Here every scheduling
/// increment is tightly bounded (`max(T+_sleep) ≈ 95 ns`), the workload
/// shape the calendar ring is sized for; the single-pulse groups above
/// cover the generous-timeout regime where the sleep horizon dominates.
fn bench_multi_pulse(c: &mut Criterion) {
    use hex_clock::{PulseTrain, Scenario};
    use hex_core::Timing;
    use hex_des::{Duration, SimRng};
    use hex_sim::InitState;

    let mut g = c.benchmark_group("multi_pulse");
    g.sample_size(10);
    let grid = HexGrid::new(20, 20);
    let mut rng = SimRng::seed_from_u64(7);
    let sched = PulseTrain::new(Scenario::Zero, 8, Duration::from_ns(300.0)).generate(20, &mut rng);
    for policy in QueuePolicy::ALL {
        let cfg = SimConfig {
            timing: Timing::paper_scenario_iii(),
            init: InitState::Arbitrary,
            queue: policy,
            ..SimConfig::fault_free()
        };
        g.bench_with_input(
            BenchmarkId::new("stabilization_20x20", policy.label()),
            &grid,
            |b, grid| {
                let mut scratch = SimScratch::new();
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed).total_fires()
                })
            },
        );
    }
    g.finish();
}

/// Batched SoA dispatch against the scalar reference on the same
/// workloads, same queue (engine default): the rows differ only in
/// `SimConfig::batch`. `single_pulse_*` is the fault-free fast-path
/// regime (whole-batch masks let the kernel skip every fault and role
/// check); `single_pulse_byzantine_*` keeps one Byzantine node so the
/// guarded batched kernel is measured too; `stabilization_*` is the
/// multi-pulse arbitrary-init regime. The committed
/// `BENCH_single_pulse.json` snapshot records these rows — batched must
/// not lose to scalar there.
fn bench_dispatch(c: &mut Criterion) {
    use hex_clock::{PulseTrain, Scenario};
    use hex_core::{FaultPlan, NodeFault, Timing};
    use hex_des::{Duration, SimRng};
    use hex_sim::InitState;

    let mut g = c.benchmark_group("dispatch");
    g.sample_size(20);
    for (l, w) in [(50u32, 20u32), (100, 40)] {
        let grid = HexGrid::new(l, w);
        let sched = zero_schedule(w);
        for (label, batch) in [("scalar", false), ("batched", true)] {
            let cfg = SimConfig {
                batch,
                ..SimConfig::fault_free()
            };
            g.bench_with_input(
                BenchmarkId::new(format!("single_pulse_{label}"), format!("{l}x{w}")),
                &grid,
                |b, grid| {
                    let mut scratch = SimScratch::new();
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed).total_fires()
                    })
                },
            );
        }
    }
    {
        let grid = HexGrid::new(50, 20);
        let sched = zero_schedule(20);
        for (label, batch) in [("scalar", false), ("batched", true)] {
            let cfg = SimConfig {
                batch,
                faults: FaultPlan::none().with_node(grid.node(10, 10), NodeFault::Byzantine),
                timing: Timing::paper_scenario_iii(),
                ..SimConfig::fault_free()
            };
            g.bench_with_input(
                BenchmarkId::new(format!("single_pulse_byzantine_{label}"), "50x20"),
                &grid,
                |b, grid| {
                    let mut scratch = SimScratch::new();
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed).total_fires()
                    })
                },
            );
        }
    }
    {
        let grid = HexGrid::new(20, 20);
        let mut rng = SimRng::seed_from_u64(7);
        let sched =
            PulseTrain::new(Scenario::Zero, 8, Duration::from_ns(300.0)).generate(20, &mut rng);
        for (label, batch) in [("scalar", false), ("batched", true)] {
            let cfg = SimConfig {
                batch,
                timing: Timing::paper_scenario_iii(),
                init: InitState::Arbitrary,
                ..SimConfig::fault_free()
            };
            g.bench_with_input(
                BenchmarkId::new(format!("stabilization_{label}"), "20x20"),
                &grid,
                |b, grid| {
                    let mut scratch = SimScratch::new();
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed).total_fires()
                    })
                },
            );
        }
    }
    g.finish();
}

/// Dynamic fault campaigns (scripted mid-run transitions) under both
/// dispatch strategies: `burst_*` flips one node Byzantine for a
/// two-pulse window (the script machinery's guarded path), `churn_*`
/// rolls three fail-silent windows across random forwarders. Scripted
/// runs leave the fault-free whole-batch masks, so this measures the
/// transition-application overhead the campaign sweeps pay.
fn bench_campaign(c: &mut Criterion) {
    use hex_clock::{PulseTrain, Scenario};
    use hex_core::fault::forwarder_candidates;
    use hex_core::{FaultScript, NodeFault, RejoinState, Timing};
    use hex_des::{Duration, SimRng};
    use hex_sim::InitState;

    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    let grid = HexGrid::new(20, 20);
    let mut rng = SimRng::seed_from_u64(7);
    let sched = PulseTrain::new(Scenario::Zero, 8, Duration::from_ns(300.0)).generate(20, &mut rng);
    let burst = FaultScript::burst(
        grid.node(10, 10),
        NodeFault::Byzantine,
        Time::from_ns(450.0),
        Time::from_ns(1_050.0),
        RejoinState::Arbitrary,
    );
    let mut churn_rng = SimRng::seed_from_u64(11);
    let churn = FaultScript::churn(
        &forwarder_candidates(grid.graph()),
        Time::from_ns(450.0),
        Duration::from_ns(300.0),
        Duration::from_ns(600.0),
        3,
        RejoinState::Clean,
        &mut churn_rng,
    );
    for (regime, script) in [("burst", &burst), ("churn", &churn)] {
        for (label, batch) in [("scalar", false), ("batched", true)] {
            let cfg = SimConfig {
                batch,
                script: Some(script.clone()),
                timing: Timing::paper_scenario_iii(),
                init: InitState::Arbitrary,
                ..SimConfig::fault_free()
            };
            g.bench_with_input(
                BenchmarkId::new(format!("{regime}_{label}"), "20x20"),
                &grid,
                |b, grid| {
                    let mut scratch = SimScratch::new();
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        simulate_into(&mut scratch, grid.graph(), &sched, &cfg, seed).total_fires()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_single_pulse,
    bench_multi_pulse,
    bench_dispatch,
    bench_campaign
);
criterion_main!(benches);
