//! Priority-queue ablation: `std::collections::BinaryHeap` (the engine's
//! default future event list) versus the cache-friendlier 4-ary
//! [`QuadHeapQueue`] versus the bounded-horizon [`CalendarQueue`], on
//! simulation-shaped workloads.
//!
//! Three access patterns matter for a DES:
//!
//! * **bulk drain** — schedule everything, pop everything (single-pulse
//!   runs are close to this: most events exist before the wave passes);
//! * **hold model** — pop one, reschedule it a random delta ahead
//!   (steady-state multi-pulse simulation; the classic PQ benchmark);
//! * **engine-shaped hold** — the hold model with the *engine's* increment
//!   distribution instead of uniform noise: a 3:3:1 mix of `[d-, d+]`
//!   deliveries, `[T-, T+]` link timeouts and `[T-, T+]` sleeps (per fire
//!   a node broadcasts ~3 deliveries, each delivery arms one link timeout,
//!   and the node sleeps once — Table 3 scenario (iii) scales). Queue
//!   comparisons on this group measure the real workload shape; the run
//!   header reports the engine's stale-event share
//!   (`SimScratch::stale_events`), the fraction of that churn which is
//!   epoch-rejected on pop.
//!
//! The bulk-drain pattern is additionally measured against **reused**
//! queues (`clear` between iterations, the `SimScratch` batch idiom) to
//! expose the allocation share of the fresh-queue cost.
//!
//! `scripts/bench_snapshot.sh` records this three-way ablation in
//! `BENCH_pq.json`; the winner is `hex_sim::QueuePolicy::default()`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hex_core::{HexGrid, Timing, D_MINUS, D_PLUS};
use hex_des::{CalendarQueue, Duration, EventQueue, QuadHeapQueue, SimRng, Time};
use hex_sim::{simulate_into, InitState, RunSpec, SimScratch};
use std::hint::black_box;

fn delays(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            rng.duration_in(Duration::from_ps(1), Duration::from_ps(10_000))
                .ps()
        })
        .collect()
}

/// Increments with the engine's distribution: deliveries, link timeouts
/// and sleeps in a 3:3:1 mix at Table 3 scenario (iii) scales.
fn engine_shaped_increments(n: usize, seed: u64) -> Vec<i64> {
    let timing = Timing::paper_scenario_iii();
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match i % 7 {
            0..=2 => rng.duration_in(D_MINUS, D_PLUS).ps(),
            3..=5 => rng.duration_in(timing.link.lo, timing.link.hi).ps(),
            _ => rng.duration_in(timing.sleep.lo, timing.sleep.hi).ps(),
        })
        .collect()
}

/// The engine's maximum scheduling increment under Table 3 (iii): the
/// calendar ring horizon the engine itself would pick.
fn engine_max_increment() -> Duration {
    Timing::paper_scenario_iii().sleep.hi
}

fn bulk_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("pq_bulk_drain");
    for &n in &[1_000usize, 10_000, 100_000] {
        let ts = delays(n, 1);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("binary_heap", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(ts.len());
                for (i, &t) in ts.iter().enumerate() {
                    q.push(Time::from_ps(t), i);
                }
                let mut acc = 0usize;
                while let Some(e) = q.pop() {
                    acc ^= e.payload;
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("quad_heap", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q = QuadHeapQueue::with_capacity(ts.len());
                for (i, &t) in ts.iter().enumerate() {
                    q.push(Time::from_ps(t), i);
                }
                let mut acc = 0usize;
                while let Some((_, p)) = q.pop() {
                    acc ^= p;
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("calendar", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q = CalendarQueue::for_profile(Duration::from_ps(10_000), ts.len());
                for (i, &t) in ts.iter().enumerate() {
                    q.push(Time::from_ps(t), i);
                }
                let mut acc = 0usize;
                while let Some(e) = q.pop() {
                    acc ^= e.payload;
                }
                black_box(acc)
            })
        });
        // One queue cleared between iterations: the scratch-reuse path of
        // the simulation engine (allocation amortized away).
        g.bench_with_input(BenchmarkId::new("binary_heap_reused", n), &ts, |b, ts| {
            let mut q = EventQueue::with_capacity(ts.len());
            b.iter(|| {
                q.clear();
                for (i, &t) in ts.iter().enumerate() {
                    q.push(Time::from_ps(t), i);
                }
                let mut acc = 0usize;
                while let Some(e) = q.pop() {
                    acc ^= e.payload;
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("calendar_reused", n), &ts, |b, ts| {
            let mut q = CalendarQueue::for_profile(Duration::from_ps(10_000), ts.len());
            b.iter(|| {
                q.clear();
                for (i, &t) in ts.iter().enumerate() {
                    q.push(Time::from_ps(t), i);
                }
                let mut acc = 0usize;
                while let Some(e) = q.pop() {
                    acc ^= e.payload;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// The classic hold model on uniform increments in `[1, 10_000]` ps.
fn hold_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("pq_hold_model");
    const OPS: usize = 100_000;
    for &resident in &[64usize, 1_024, 16_384] {
        let ds = delays(OPS, 2);
        g.throughput(Throughput::Elements(OPS as u64));
        g.bench_with_input(BenchmarkId::new("binary_heap", resident), &ds, |b, ds| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(resident);
                for i in 0..resident {
                    q.push(Time::from_ps(i as i64), i);
                }
                for &d in ds {
                    let e = q.pop().expect("resident set never empties");
                    q.push(e.at + Duration::from_ps(d), e.payload);
                }
                black_box(q.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("quad_heap", resident), &ds, |b, ds| {
            b.iter(|| {
                let mut q = QuadHeapQueue::with_capacity(resident);
                for i in 0..resident {
                    q.push(Time::from_ps(i as i64), i);
                }
                for &d in ds {
                    let (t, p) = q.pop().expect("resident set never empties");
                    q.push(t + Duration::from_ps(d), p);
                }
                black_box(q.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("calendar", resident), &ds, |b, ds| {
            b.iter(|| {
                let mut q = CalendarQueue::for_profile(Duration::from_ps(10_000), resident);
                for i in 0..resident {
                    q.push(Time::from_ps(i as i64), i);
                }
                for &d in ds {
                    let e = q.pop().expect("resident set never empties");
                    q.push(e.at + Duration::from_ps(d), e.payload);
                }
                black_box(q.len())
            })
        });
    }
    g.finish();
}

/// The hold model with the engine's increment distribution (see the
/// module docs): what the `QueuePolicy` choice actually experiences. All
/// three queues run the scratch idiom — one persistent queue, `clear`
/// between iterations — matching how `SimScratch` holds them.
fn hold_engine_shaped(c: &mut Criterion) {
    report_stale_share();
    let mut g = c.benchmark_group("pq_hold_engine");
    const OPS: usize = 100_000;
    for &resident in &[64usize, 1_024, 16_384] {
        let ds = engine_shaped_increments(OPS, 3);
        g.throughput(Throughput::Elements(OPS as u64));
        g.bench_with_input(BenchmarkId::new("binary_heap", resident), &ds, |b, ds| {
            let mut q = EventQueue::with_capacity(resident);
            b.iter(|| {
                q.clear();
                for i in 0..resident {
                    q.push(Time::from_ps(i as i64), i);
                }
                for &d in ds {
                    let e = q.pop().expect("resident set never empties");
                    q.push(e.at + Duration::from_ps(d), e.payload);
                }
                black_box(q.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("quad_heap", resident), &ds, |b, ds| {
            let mut q = QuadHeapQueue::with_capacity(resident);
            b.iter(|| {
                q.clear();
                for i in 0..resident {
                    q.push(Time::from_ps(i as i64), i);
                }
                for &d in ds {
                    let (t, p) = q.pop().expect("resident set never empties");
                    q.push(t + Duration::from_ps(d), p);
                }
                black_box(q.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("calendar", resident), &ds, |b, ds| {
            // Sized exactly how the engine sizes it: ring covers the
            // slowest timeout, bucket count tracks the resident set.
            let mut q = CalendarQueue::for_profile(engine_max_increment(), resident);
            b.iter(|| {
                q.clear();
                for i in 0..resident {
                    q.push(Time::from_ps(i as i64), i);
                }
                for &d in ds {
                    let e = q.pop().expect("resident set never empties");
                    q.push(e.at + Duration::from_ps(d), e.payload);
                }
                black_box(q.len())
            })
        });
    }
    g.finish();
}

/// Measure the stale-event share of a representative engine workload (the
/// stabilization regime: Table 3 timing, arbitrary init, a 6-pulse train)
/// so the hold-model mix above can be judged against reality: stale pops
/// are pure queue churn, so the higher this share, the more the queue
/// choice matters relative to the state machines.
fn report_stale_share() {
    let spec = RunSpec::grid(12, 8)
        .runs(1)
        .pulses(6)
        .init(InitState::Arbitrary);
    let grid = HexGrid::new(spec.length, spec.width);
    let mut scratch = SimScratch::new();
    let inputs = spec.materialize(0);
    simulate_into(
        &mut scratch,
        grid.graph(),
        &inputs.schedule,
        &inputs.config,
        inputs.seed,
    );
    let (popped, stale) = (scratch.popped_events(), scratch.stale_events());
    println!(
        "pq_hold_engine: engine stale-event share {stale}/{popped} pops \
         ({:.1}%) on 12x8, 6 pulses, arbitrary init",
        100.0 * stale as f64 / popped.max(1) as f64
    );
}

criterion_group!(benches, bulk_drain, hold_model, hold_engine_shaped);
criterion_main!(benches);
