//! Priority-queue ablation: `std::collections::BinaryHeap` (the engine's
//! default future event list) versus the cache-friendlier 4-ary
//! [`QuadHeapQueue`], on simulation-shaped workloads.
//!
//! Two access patterns matter for a DES:
//!
//! * **bulk drain** — schedule everything, pop everything (single-pulse
//!   runs are close to this: most events exist before the wave passes);
//! * **hold model** — pop one, reschedule it a random delta ahead
//!   (steady-state multi-pulse simulation; the classic PQ benchmark).
//!
//! The bulk-drain pattern is additionally measured against a **reused**
//! queue (`EventQueue::clear` between iterations, the `SimScratch` batch
//! idiom) to expose the allocation share of the fresh-queue cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hex_des::{Duration, EventQueue, QuadHeapQueue, SimRng, Time};
use std::hint::black_box;

fn delays(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.duration_in(Duration::from_ps(1), Duration::from_ps(10_000)).ps())
        .collect()
}

fn bulk_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("pq_bulk_drain");
    for &n in &[1_000usize, 10_000, 100_000] {
        let ts = delays(n, 1);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("binary_heap", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(ts.len());
                for (i, &t) in ts.iter().enumerate() {
                    q.push(Time::from_ps(t), i);
                }
                let mut acc = 0usize;
                while let Some(e) = q.pop() {
                    acc ^= e.payload;
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("quad_heap", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q = QuadHeapQueue::with_capacity(ts.len());
                for (i, &t) in ts.iter().enumerate() {
                    q.push(Time::from_ps(t), i);
                }
                let mut acc = 0usize;
                while let Some((_, p)) = q.pop() {
                    acc ^= p;
                }
                black_box(acc)
            })
        });
        // One queue cleared between iterations: the scratch-reuse path of
        // the simulation engine (allocation amortized away).
        g.bench_with_input(BenchmarkId::new("binary_heap_reused", n), &ts, |b, ts| {
            let mut q = EventQueue::with_capacity(ts.len());
            b.iter(|| {
                q.clear();
                for (i, &t) in ts.iter().enumerate() {
                    q.push(Time::from_ps(t), i);
                }
                let mut acc = 0usize;
                while let Some(e) = q.pop() {
                    acc ^= e.payload;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn hold_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("pq_hold_model");
    const OPS: usize = 100_000;
    for &resident in &[64usize, 1_024, 16_384] {
        let ds = delays(OPS, 2);
        g.throughput(Throughput::Elements(OPS as u64));
        g.bench_with_input(BenchmarkId::new("binary_heap", resident), &ds, |b, ds| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(resident);
                for i in 0..resident {
                    q.push(Time::from_ps(i as i64), i);
                }
                for &d in ds {
                    let e = q.pop().expect("resident set never empties");
                    q.push(e.at + Duration::from_ps(d), e.payload);
                }
                black_box(q.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("quad_heap", resident), &ds, |b, ds| {
            b.iter(|| {
                let mut q = QuadHeapQueue::with_capacity(resident);
                for i in 0..resident {
                    q.push(Time::from_ps(i as i64), i);
                }
                for &d in ds {
                    let (t, p) = q.pop().expect("resident set never empties");
                    q.push(t + Duration::from_ps(d), p);
                }
                black_box(q.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bulk_drain, hold_model);
criterion_main!(benches);
