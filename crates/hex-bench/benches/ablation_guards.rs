//! Guard ablation: why Algorithm 1 requires two *adjacent* in-neighbors.
//!
//! Three guard variants on the same cylinder:
//!
//! * `hex` — the paper's guard {(L,LL), (LL,LR), (LR,R)};
//! * `central_only` — {(LL,LR)}: no side help; a single crashed lower
//!   neighbor starves the node (no fault tolerance);
//! * `any_two` — all six port pairs: faster, but two *opposite* neighbors
//!   (e.g. left+right) can trigger a node, which breaks the causal-chain
//!   arguments behind the skew bounds and lets Byzantine pairs forge
//!   pulses.
//!
//! The bench times a pulse through each variant; the behavioural
//! differences (starvation, forged triggers) are asserted in the
//! integration tests (`tests/ablation.rs` at the workspace root).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_bench::zero_schedule;
use hex_core::graph::Role;
use hex_core::{Coord, PulseGraph};
use hex_sim::{simulate, SimConfig};

/// Build a HEX-shaped cylinder with a custom guard.
fn guarded_grid(l: u32, w: u32, guard: &[(u8, u8)]) -> PulseGraph {
    let mut b = PulseGraph::builder();
    for layer in 0..=l {
        for col in 0..w {
            let role = if layer == 0 {
                Role::Source
            } else {
                Role::Forwarder
            };
            let g = if layer == 0 { vec![] } else { guard.to_vec() };
            b.add_node(role, Some(Coord::new(layer, col)), g);
        }
    }
    let id = |layer: u32, col: i64| -> u32 { layer * w + col.rem_euclid(w as i64) as u32 };
    for layer in 1..=l {
        for col in 0..w as i64 {
            let dst = id(layer, col);
            b.add_link(id(layer, col - 1), dst, 0);
            b.add_link(id(layer - 1, col), dst, 1);
            b.add_link(id(layer - 1, col + 1), dst, 2);
            b.add_link(id(layer, col + 1), dst, 3);
        }
    }
    b.build()
}

fn bench_guards(c: &mut Criterion) {
    let mut g = c.benchmark_group("guard_ablation");
    g.sample_size(20);
    let variants: [(&str, Vec<(u8, u8)>); 3] = [
        ("hex", hex_core::grid::HEX_GUARD.to_vec()),
        ("central_only", vec![(1, 2)]),
        (
            "any_two",
            vec![(0, 1), (1, 2), (2, 3), (0, 2), (1, 3), (0, 3)],
        ),
    ];
    for (name, guard) in variants {
        let graph = guarded_grid(30, 16, &guard);
        let sched = zero_schedule(16);
        let cfg = SimConfig::fault_free();
        g.bench_with_input(BenchmarkId::new("pulse", name), &graph, |b, graph| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                simulate(graph, &sched, &cfg, seed).total_fires()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_guards);
criterion_main!(benches);
