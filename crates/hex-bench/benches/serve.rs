//! `hexd` service latency: cold compute vs warm cache hit, end to end
//! through a real daemon on a Unix socket.
//!
//! The workload is a representative Table-1 sweep (the paper's 50×20
//! grid, scenario (iii), `HEX_RUNS` runs per query). `cold_compute`
//! queries a fresh seed every iteration — each is a cache miss, so the
//! number is round-trip + batch reduction. `warm_cache_hit` replays one
//! pre-warmed spec — round-trip + disk verify only. The committed
//! `BENCH_serve.json` snapshot quotes both; their ratio is the value of
//! the memoized cache on repeat sweeps (ROADMAP "hexd" item).

use criterion::{criterion_group, criterion_main, Criterion};
use hex_bench::RunSpec;
use hex_serve::{serve, Client, QueryKind, ServeConfig};
use hex_sim::{knobs, QueuePolicy};

fn sweep_spec(seed: u64) -> RunSpec {
    let runs = knobs::parsed("HEX_RUNS", "a run count").unwrap_or(16);
    RunSpec::grid(50, 20)
        .runs(runs)
        .seed(seed)
        .queue(QueuePolicy::Calendar)
}

fn bench_serve(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("hex-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("bench scratch dir");
    let cfg = ServeConfig {
        addr: format!("unix:{}", base.join("hexd.sock").display()),
        cache_dir: base.join("cache"),
        cache_max_mb: 0,
        workers: 0,
        queue_depth: 64,
        max_cells: 1 << 20,
        max_runs: 1 << 16,
        timeout_ms: 0, // benches must never trip the socket budget
    };
    let handle = serve(cfg).expect("start hexd");
    let addr = handle.addr();

    let mut g = c.benchmark_group("serve");
    g.sample_size(10);

    // Every iteration queries a never-seen seed: always a miss, so the
    // measured latency is protocol round-trip + the full batch reduction.
    // The counter lives outside the bench closure because the harness
    // re-invokes it per sample; a closure-local counter would reset and
    // replay already-cached seeds.
    let next_seed = std::sync::atomic::AtomicU64::new(1);
    g.bench_function("cold_compute", |b| {
        let mut client = Client::connect(&addr).expect("connect");
        b.iter(|| {
            let seed = next_seed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let reply = client
                .query(QueryKind::Skew, 0, &sweep_spec(seed))
                .expect("cold query");
            assert!(!reply.cached, "cold query unexpectedly cached");
            reply.payload.len()
        })
    });

    // One pre-warmed spec replayed every iteration: round-trip + cache
    // load/verify, no simulation.
    g.bench_function("warm_cache_hit", |b| {
        let mut client = Client::connect(&addr).expect("connect");
        let spec = sweep_spec(u64::MAX);
        client.query(QueryKind::Skew, 0, &spec).expect("warm-up");
        b.iter(|| {
            let reply = client.query(QueryKind::Skew, 0, &spec).expect("warm query");
            assert!(reply.cached, "warm query missed the cache");
            reply.payload.len()
        })
    });

    g.finish();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
