//! Wave-pipeline benchmarks: one full single-pulse experiment (simulate +
//! view extraction + skew collection) per scenario on the paper's grid,
//! driven through `RunSpec` run materialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_analysis::skew::{collect_skews, exclusion_mask};
use hex_bench::RunSpec;
use hex_clock::Scenario;

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("wave_pipeline");
    g.sample_size(20);
    let base = RunSpec::paper();
    let grid = base.hex_grid();
    let mask = exclusion_mask(&grid, &[], 0);
    for scenario in Scenario::ALL {
        let spec = base.clone().scenario(scenario);
        g.bench_with_input(
            BenchmarkId::new("scenario", scenario.label()),
            &spec,
            |b, spec| {
                let mut run = 0usize;
                b.iter(|| {
                    run += 1;
                    let rv = spec.run_one_with(&grid, run);
                    collect_skews(&grid, rv.view(), &mask).intra.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
