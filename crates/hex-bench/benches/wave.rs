//! Wave-pipeline benchmarks: one full single-pulse experiment (simulate +
//! view extraction + skew collection) per scenario on the paper's grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_analysis::skew::{collect_skews, exclusion_mask};
use hex_clock::Scenario;
use hex_core::{HexGrid, D_MINUS, D_PLUS};
use hex_des::{Schedule, SimRng};
use hex_sim::{simulate, PulseView, SimConfig};

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("wave_pipeline");
    g.sample_size(20);
    let grid = HexGrid::paper();
    let mask = exclusion_mask(&grid, &[], 0);
    for scenario in Scenario::ALL {
        g.bench_with_input(
            BenchmarkId::new("scenario", scenario.label()),
            &scenario,
            |b, &scenario| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = SimRng::seed_from_u64(seed);
                    let offsets = scenario.single_pulse_times(20, D_MINUS, D_PLUS, &mut rng);
                    let sched = Schedule::single_pulse(offsets);
                    let trace = simulate(grid.graph(), &sched, &SimConfig::fault_free(), seed);
                    let view = PulseView::from_single_pulse(&grid, &trace);
                    collect_skews(&grid, &view, &mask).intra.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
