//! HEX vs H-tree: build + one pulse at several sizes (the performance side
//! of the title-claim comparison; the structural side is the
//! `tree_compare` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_bench::zero_schedule;
use hex_core::HexGrid;
use hex_des::SimRng;
use hex_sim::{simulate, SimConfig};
use hex_tree::{HTree, HTreeConfig};

fn bench_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_vs_hex_pulse");
    g.sample_size(20);
    for depth in [3u32, 4, 5] {
        let side = 1u32 << depth;
        let tree = HTree::build(HTreeConfig::paper_comparable(depth));
        g.bench_with_input(BenchmarkId::new("htree", side), &tree, |b, tree| {
            let mut rng = SimRng::seed_from_u64(1);
            b.iter(|| tree.simulate_pulse(&[], &mut rng).len())
        });

        let grid = HexGrid::new((side - 1).max(1), side.max(3));
        let sched = zero_schedule(side.max(3));
        let cfg = SimConfig::fault_free();
        g.bench_with_input(BenchmarkId::new("hex", side), &grid, |b, grid| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                simulate(grid.graph(), &sched, &cfg, seed).total_fires()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
