//! Timeout ablation: the link timeouts of Algorithm 1 exist purely for
//! self-stabilization ("there would be no need for the individual link
//! timeout mechanism if the algorithm always started from a properly
//! initialized state"). This bench runs the stabilization pipeline with
//! the Table-3 link timeouts vs. effectively-infinite ones and reports the
//! wall time; the stabilization-quality comparison (with timeouts HEX
//! "reliably stabilizes within two clock pulses") is asserted in
//! `tests/stabilization.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_clock::{PulseTrain, Scenario};
use hex_core::{DelayRange, HexGrid, Timing};
use hex_des::{Duration, SimRng};
use hex_sim::{simulate, InitState, SimConfig};

fn bench_timeouts(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeout_ablation");
    g.sample_size(10);
    let grid = HexGrid::new(20, 10);
    let with_timeouts = Timing::paper_scenario_iii();
    let without_timeouts = Timing {
        link: DelayRange::fixed(Duration::from_ns(100_000.0)),
        sleep: with_timeouts.sleep,
    };
    for (name, timing) in [("link_timeouts_on", with_timeouts), ("link_timeouts_off", without_timeouts)]
    {
        g.bench_with_input(BenchmarkId::new("stab_run", name), &timing, |b, timing| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SimRng::seed_from_u64(seed);
                let train = PulseTrain::new(Scenario::Zero, 10, Duration::from_ns(300.0));
                let sched = train.generate(10, &mut rng);
                let cfg = SimConfig {
                    timing: *timing,
                    init: InitState::Arbitrary,
                    ..SimConfig::fault_free()
                };
                simulate(grid.graph(), &sched, &cfg, seed).total_fires()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_timeouts);
criterion_main!(benches);
