//! Timeout ablation: the link timeouts of Algorithm 1 exist purely for
//! self-stabilization ("there would be no need for the individual link
//! timeout mechanism if the algorithm always started from a properly
//! initialized state"). This bench runs the stabilization pipeline with
//! the Table-3 link timeouts vs. effectively-infinite ones and reports the
//! wall time; the stabilization-quality comparison (with timeouts HEX
//! "reliably stabilizes within two clock pulses") is asserted in
//! `tests/stabilization.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hex_bench::{RunSpec, TimingPolicy};
use hex_core::{DelayRange, Timing};
use hex_des::Duration;
use hex_sim::InitState;

fn bench_timeouts(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeout_ablation");
    g.sample_size(10);
    let base = RunSpec::grid(20, 10).pulses(10).init(InitState::Arbitrary);
    let grid = base.hex_grid();
    let with_timeouts = Timing::paper_scenario_iii();
    let without_timeouts = Timing {
        link: DelayRange::fixed(Duration::from_ns(100_000.0)),
        sleep: with_timeouts.sleep,
    };
    for (name, timing) in [
        ("link_timeouts_on", with_timeouts),
        ("link_timeouts_off", without_timeouts),
    ] {
        let spec = base.clone().timing(TimingPolicy::Fixed(timing));
        g.bench_with_input(BenchmarkId::new("stab_run", name), &spec, |b, spec| {
            let mut run = 0usize;
            b.iter(|| {
                run += 1;
                spec.run_one_with(&grid, run).views.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_timeouts);
criterion_main!(benches);
