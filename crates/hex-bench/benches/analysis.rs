//! Analysis-pipeline benchmarks: skew statistics, histograms and the
//! stabilization estimator over pre-simulated run sets (materialized once
//! through `RunSpec`).

use criterion::{criterion_group, criterion_main, Criterion};
use hex_analysis::histogram::Histogram;
use hex_analysis::skew::{collect_skews, exclusion_mask, SkewSamples};
use hex_analysis::stabilization::{stabilization_pulse, Criterion as StabCriterion};
use hex_analysis::stats::Summary;
use hex_bench::{zero_schedule, RunSpec, TimingPolicy};
use hex_core::D_PLUS;
use hex_des::Duration;
use hex_sim::{InitState, PulseView};

fn bench_stats(c: &mut Criterion) {
    let spec = RunSpec::paper()
        .runs(50)
        .seed(0)
        .schedule(zero_schedule(20))
        .timing(TimingPolicy::Generous);
    let grid = spec.hex_grid();
    let mask = exclusion_mask(&grid, &[], 0);
    let views: Vec<PulseView> = spec
        .run_batch()
        .into_iter()
        .map(|rv| rv.views.into_iter().next().expect("one view"))
        .collect();
    let mut cumulated = SkewSamples::default();
    for v in &views {
        cumulated.extend(&collect_skews(&grid, v, &mask));
    }

    c.bench_function("collect_skews_50x20", |b| {
        b.iter(|| collect_skews(&grid, &views[0], &mask).intra.len())
    });
    c.bench_function("summary_50k_samples", |b| {
        b.iter(|| Summary::from_durations(&cumulated.intra).unwrap().max)
    });
    c.bench_function("histogram_50k_samples", |b| {
        b.iter(|| {
            let mut h = Histogram::new(Duration::ZERO, Duration::from_ns(9.0), 36);
            h.add_all(&cumulated.intra);
            h.total()
        })
    });
}

fn bench_stabilization_estimator(c: &mut Criterion) {
    let spec = RunSpec::grid(20, 10)
        .runs(1)
        .seed(2)
        .pulses(10)
        .init(InitState::Arbitrary);
    let grid = spec.hex_grid();
    let rv = spec.run_single();
    let mask = exclusion_mask(&grid, &[], 0);
    let crit = StabCriterion::uniform(D_PLUS * 2, D_PLUS, grid.length());
    c.bench_function("stabilization_estimate_10_pulses", |b| {
        b.iter(|| stabilization_pulse(&grid, &rv.views, &mask, &crit))
    });
}

criterion_group!(benches, bench_stats, bench_stabilization_estimator);
criterion_main!(benches);
