//! Analysis-pipeline benchmarks: skew statistics, histograms and the
//! stabilization estimator over pre-simulated run sets.

use criterion::{criterion_group, criterion_main, Criterion};
use hex_analysis::histogram::Histogram;
use hex_analysis::skew::{collect_skews, exclusion_mask, SkewSamples};
use hex_analysis::stabilization::{stabilization_pulse, Criterion as StabCriterion};
use hex_analysis::stats::Summary;
use hex_bench::zero_schedule;
use hex_clock::{PulseTrain, Scenario};
use hex_core::{HexGrid, Timing, D_PLUS};
use hex_des::{Duration, SimRng};
use hex_sim::{assign_pulses, simulate, InitState, PulseView, SimConfig};

fn bench_stats(c: &mut Criterion) {
    let grid = HexGrid::paper();
    let mask = exclusion_mask(&grid, &[], 0);
    let views: Vec<PulseView> = (0..50u64)
        .map(|seed| {
            let trace = simulate(
                grid.graph(),
                &zero_schedule(20),
                &SimConfig::fault_free(),
                seed,
            );
            PulseView::from_single_pulse(&grid, &trace)
        })
        .collect();
    let mut cumulated = SkewSamples::default();
    for v in &views {
        cumulated.extend(&collect_skews(&grid, v, &mask));
    }

    c.bench_function("collect_skews_50x20", |b| {
        b.iter(|| collect_skews(&grid, &views[0], &mask).intra.len())
    });
    c.bench_function("summary_50k_samples", |b| {
        b.iter(|| Summary::from_durations(&cumulated.intra).unwrap().max)
    });
    c.bench_function("histogram_50k_samples", |b| {
        b.iter(|| {
            let mut h = Histogram::new(Duration::ZERO, Duration::from_ns(9.0), 36);
            h.add_all(&cumulated.intra);
            h.total()
        })
    });
}

fn bench_stabilization_estimator(c: &mut Criterion) {
    let grid = HexGrid::new(20, 10);
    let mut rng = SimRng::seed_from_u64(1);
    let train = PulseTrain::new(Scenario::Zero, 10, Duration::from_ns(300.0));
    let sched = train.generate(10, &mut rng);
    let cfg = SimConfig {
        timing: Timing::paper_scenario_iii(),
        init: InitState::Arbitrary,
        ..SimConfig::fault_free()
    };
    let trace = simulate(grid.graph(), &sched, &cfg, 2);
    let views = assign_pulses(&grid, &trace, &sched, hex_core::DelayRange::paper().mid());
    let mask = exclusion_mask(&grid, &[], 0);
    let crit = StabCriterion::uniform(D_PLUS * 2, D_PLUS, grid.length());
    c.bench_function("stabilization_estimate_10_pulses", |b| {
        b.iter(|| stabilization_pulse(&grid, &views, &mask, &crit))
    });
}

criterion_group!(benches, bench_stats, bench_stabilization_estimator);
criterion_main!(benches);
