//! # hex-bench — experiment drivers for every table and figure
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md for the full index). Since the `RunSpec`
//! redesign the experiment vocabulary itself — grid shape, scenarios, fault
//! regimes, Table-3 timing, seeding — lives in [`hex_sim::spec`], and the
//! reductions (skews, stabilization estimates) in [`hex_analysis::reduce`];
//! this library only keeps the *presentation* drivers (paper-layout rows,
//! the Fig. 15/16 and Fig. 18/19 sweep printers) so the binaries stay
//! declarative. Criterion benches under `benches/` time the underlying
//! kernels and run reduced versions of the experiment pipelines.
//!
//! Environment knobs honored by all binaries (via [`RunSpec::from_env`] /
//! [`RunSpec::with_env`]):
//!
//! * `HEX_RUNS` — runs per configuration (default 250, the paper's count);
//! * `HEX_SEED` — base seed (default 42);
//! * `HEX_THREADS` — worker threads (default: available parallelism);
//! * `HEX_EMIT` — `csv`/`json` machine-readable output next to the text
//!   (legacy alias: setting `HEX_CSV` selects CSV).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hex_analysis::reduce::ObservedStabilizationReducer;
use hex_analysis::stats::Summary;
use hex_core::{D_MINUS, D_PLUS};
use hex_des::{Duration, Schedule, Time};

pub use hex_analysis::emit::{Emitter, Table, Value};
pub use hex_analysis::reduce::{
    batch_skews, batch_skews_from_views, BatchSkews, ObservedSkewReducer, SkewReducer,
    StabilizationReducer,
};
pub use hex_sim::spec::{
    scenario_separation, scenario_timing, FaultRegime, RunSpec, RunView, TimingPolicy,
};

use hex_clock::Scenario;

/// A single-run spec reproducing a deterministic adversarial
/// [`Construction`](hex_theory::adversary::Construction) (Fig. 5, Fig. 17,
/// the worst-case landscape): explicit delay tables, fault plan and
/// layer-0 schedule, generous single-pulse timeouts.
pub fn construction_spec(c: &hex_theory::adversary::Construction, seed: u64) -> RunSpec {
    RunSpec::grid(c.grid.length(), c.grid.width())
        .runs(1)
        .threads(1)
        .seed(seed)
        .delays(c.delays.clone())
        .faults(FaultRegime::Plan(c.faults.clone()))
        .schedule(c.schedule.clone())
        .timing(TimingPolicy::Generous)
}

/// The full triggering-time matrix of a wave as a
/// `(layer, col, t_ns, cause)` emit table (Figs. 8/9/13/14).
pub fn wave_table(name: &str, grid: &hex_core::HexGrid, view: &hex_sim::PulseView) -> Table {
    use hex_analysis::wave::cause_label;
    let mut t = Table::new(name, &["layer", "col", "t_ns", "cause"]);
    for layer in 0..=grid.length() {
        for col in 0..grid.width() {
            let time = view
                .time(layer, col as i64)
                .map(|at| (at - Time::ZERO).ns());
            t.row(vec![
                Value::from(layer),
                Value::from(col),
                Value::from(time),
                Value::from(cause_label(view.trigger_cause(layer, col as i64))),
            ]);
        }
    }
    t
}

/// A histogram as a `(bin_lo_ns, bin_hi_ns, count)` emit table
/// (Figs. 10/11).
pub fn histogram_table(name: &str, h: &hex_analysis::histogram::Histogram) -> Table {
    let mut t = Table::new(name, &["bin_lo_ns", "bin_hi_ns", "count"]);
    for (lo, hi, count) in h.rows() {
        t.row(vec![
            Value::from(lo.ns()),
            Value::from(hi.ns()),
            Value::from(count),
        ]);
    }
    t
}

/// A per-layer skew series as an emit table (Fig. 12).
pub fn layer_table(name: &str, rows: &[hex_analysis::layers::LayerRow]) -> Table {
    let mut t = Table::new(name, &["layer", "min", "q5", "avg", "q95", "max", "std"]);
    for r in rows {
        t.row(vec![
            Value::from(r.layer),
            Value::from(r.summary.min),
            Value::from(r.summary.q05),
            Value::from(r.summary.avg),
            Value::from(r.summary.q95),
            Value::from(r.summary.max),
            Value::from(r.summary.std),
        ]);
    }
    t
}

/// Render the paper's table row (intra avg/q95/max + inter min/q5/avg/q95/
/// max) from cumulated samples.
pub fn table_row(label: &str, skews: &BatchSkews) -> String {
    let intra = Summary::from_durations(&skews.cumulated.intra).expect("intra samples");
    let inter = Summary::from_durations(&skews.cumulated.inter).expect("inter samples");
    format!(
        "{label:<24} | {} | {}",
        intra.intra_row(),
        inter.inter_row()
    )
}

/// Zero-time schedule helper (tests, benches).
pub fn zero_schedule(w: u32) -> Schedule {
    Schedule::single_pulse(vec![Time::ZERO; w as usize])
}

/// The Fig. 15/16 fault sweep: for `f ∈ {0,…,5}` Byzantine nodes and
/// `h ∈ {0, 1}` exclusion radii, print the per-run skew op distributions
/// as box-plot CSV. `base` fixes grid, runs, seed and scenario; the sweep
/// overrides the fault regime per cell and streams each batch through
/// [`batch_skews`].
pub fn fault_sweep(base: &RunSpec, title: &str) {
    use hex_analysis::boxplot::{op_boxes, sweep_csv, OpBoxes};
    for h in [0usize, 1] {
        println!(
            "\n{title}, scenario {}, h = {h}: per-run skew op distributions over {} runs (ns)",
            base.scenario.label(),
            base.runs
        );
        let mut sweep_intra: Vec<(usize, OpBoxes)> = Vec::new();
        let mut sweep_inter: Vec<(usize, OpBoxes)> = Vec::new();
        for f in 0..=5usize {
            let spec = base.clone().faults(FaultRegime::Byzantine(f));
            let skews = batch_skews(&spec, h);
            sweep_intra.push((f, op_boxes(&skews.per_run_intra)));
            sweep_inter.push((f, op_boxes(&skews.per_run_inter)));
        }
        println!("intra-layer:\n{}", sweep_csv(&sweep_intra));
        println!("inter-layer:\n{}", sweep_csv(&sweep_inter));
    }
}

/// The Fig. 18/19 stabilization sweep: for fault kinds Byzantine and
/// fail-silent, `f ∈ {0,…,5}` and threshold classes `C ∈ {0,…,3}`, print
/// average (± std) stabilization pulse and the number of stabilized runs.
/// Each `(kind, f)` batch is simulated once on the streaming extraction
/// path and folded through an [`ObservedStabilizationReducer`] evaluating
/// all four classes — no run of the sweep materializes a trace or a
/// pulse-view matrix.
pub fn stabilization_sweep(base: &RunSpec, title: &str, pulses: usize) {
    use hex_analysis::stabilization::{summarize, Criterion};
    use hex_theory::bounds::lemma5_layer_bound;

    let scenario = base.scenario;
    let grid = base.hex_grid();
    let source_spread = match scenario {
        Scenario::Zero => Duration::ZERO,
        Scenario::RandomDMinus => D_MINUS,
        Scenario::RandomDPlus => D_PLUS,
        Scenario::Ramp => D_PLUS.times((base.width / 2) as i64),
    };
    println!(
        "\n{title}, scenario {}: stabilization over {} pulses, {} runs (avg pulse ± std | stabilized/runs)",
        scenario.label(),
        pulses,
        base.runs
    );
    println!(
        "{:<12} {:>2} | {:>18} {:>18} {:>18} {:>18}",
        "fault kind", "f", "C=0", "C=1", "C=2", "C=3"
    );
    for byzantine in [true, false] {
        for f in 0..=5usize {
            let regime = if byzantine {
                FaultRegime::Byzantine(f)
            } else {
                FaultRegime::FailSilent(f)
            };
            let spec = base
                .clone()
                .faults(regime)
                .pulses(pulses)
                .init(hex_sim::InitState::Arbitrary);
            let criteria: Vec<Criterion> = (0..=3u8)
                .map(|c| {
                    Criterion::class(c, D_PLUS, base.length, |layer| {
                        lemma5_layer_bound(
                            source_spread,
                            layer,
                            f.min(layer as usize),
                            hex_core::DelayRange::paper(),
                        )
                    })
                })
                .collect();
            let estimates =
                spec.fold_observed(&ObservedStabilizationReducer::new(&grid, &criteria, 0));
            let cells: Vec<String> = estimates
                .iter()
                .map(|per_run| {
                    let stats = summarize(per_run);
                    format!(
                        "{:>5.2}±{:<4.2} {:>3}/{:<3}",
                        stats.avg, stats.std, stats.stabilized, stats.runs
                    )
                })
                .collect();
            println!(
                "{:<12} {:>2} | {} ",
                if byzantine {
                    "byzantine"
                } else {
                    "fail-silent"
                },
                f,
                cells.join(" | ")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_match_paper() {
        let s = RunSpec::paper();
        assert_eq!(s.length, 50);
        assert_eq!(s.width, 20);
        assert_eq!(s.runs, 250);
    }

    #[test]
    fn single_pulse_batch_shapes() {
        let spec = RunSpec::small();
        let views = spec.run_batch();
        assert_eq!(views.len(), spec.runs);
        for rv in &views {
            assert!(rv.faulty.is_empty());
            assert_eq!(rv.view().spurious, 0);
        }
    }

    #[test]
    fn batch_skews_nonempty() {
        let spec = RunSpec::small();
        let skews = batch_skews(&spec, 0);
        assert_eq!(skews.per_run_intra.len(), spec.runs);
        assert_eq!(
            skews.cumulated.intra.len(),
            spec.runs * (spec.length * spec.width) as usize
        );
    }

    #[test]
    fn scenario_timing_matches_table3() {
        let t = scenario_timing(Scenario::RandomDPlus);
        assert!((t.link.lo.ns() - 35.25).abs() < 0.05);
        let s = scenario_separation(Scenario::Ramp);
        assert!((s.ns() - 316.40).abs() < 0.05);
    }

    #[test]
    fn stabilization_batch_shapes() {
        let spec = RunSpec::small()
            .runs(3)
            .pulses(5)
            .init(hex_sim::InitState::Arbitrary);
        let runs = spec.run_batch();
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert_eq!(r.views.len(), 5);
        }
    }

    #[test]
    fn table_row_formats() {
        let spec = RunSpec::small();
        let skews = batch_skews(&spec, 0);
        let row = table_row("(i) 0", &skews);
        assert!(row.contains("(i) 0"));
        assert!(row.contains('|'));
    }
}
