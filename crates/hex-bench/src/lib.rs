//! # hex-bench — experiment drivers for every table and figure
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md for the full index); this library holds the
//! shared drivers so the binaries stay declarative. Criterion benches under
//! `benches/` time the underlying kernels and run reduced versions of the
//! experiment pipelines.
//!
//! Environment knobs honored by all binaries:
//!
//! * `HEX_RUNS` — runs per configuration (default 250, the paper's count);
//! * `HEX_SEED` — base seed (default 42);
//! * `HEX_THREADS` — worker threads (default: available parallelism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hex_analysis::skew::{collect_skews, exclusion_mask, SkewSamples};
use hex_analysis::stats::Summary;
use hex_core::fault::{forwarder_candidates, place_condition1};
use hex_core::{FaultPlan, HexGrid, NodeFault, NodeId, Timing, D_MINUS, D_PLUS};
use hex_clock::{PulseTrain, Scenario};
use hex_des::{Duration, Schedule, SimRng, Time};
use hex_sim::{assign_pulses, run_batch, simulate, InitState, PulseView, SimConfig};
use hex_theory::condition2::TABLE3_SIGMA_NS;
use hex_theory::Condition2;

/// Global experiment configuration (grid shape, runs, seeding, threads).
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Grid length `L` (default 50).
    pub length: u32,
    /// Grid width `W` (default 20).
    pub width: u32,
    /// Runs per configuration (default 250).
    pub runs: usize,
    /// Base seed; run `r` uses `seed + r`.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Experiment {
    /// The paper's setup: 50×20 grid, 250 runs.
    pub fn paper() -> Self {
        Experiment {
            length: 50,
            width: 20,
            runs: 250,
            seed: 42,
            threads: hex_sim::batch::default_threads(),
        }
    }

    /// Paper setup with `HEX_RUNS` / `HEX_SEED` / `HEX_THREADS` overrides.
    pub fn from_env() -> Self {
        let mut e = Experiment::paper();
        if let Ok(v) = std::env::var("HEX_RUNS") {
            e.runs = v.parse().expect("HEX_RUNS must be a number");
        }
        if let Ok(v) = std::env::var("HEX_SEED") {
            e.seed = v.parse().expect("HEX_SEED must be a number");
        }
        if let Ok(v) = std::env::var("HEX_THREADS") {
            e.threads = v.parse().expect("HEX_THREADS must be a number");
        }
        e
    }

    /// A smaller setup for unit tests and criterion benches.
    pub fn small() -> Self {
        Experiment {
            length: 12,
            width: 8,
            runs: 20,
            seed: 42,
            threads: 2,
        }
    }

    /// Build the grid.
    pub fn grid(&self) -> HexGrid {
        HexGrid::new(self.length, self.width)
    }
}

/// Fault regime of a run batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRegime {
    /// No faults.
    None,
    /// `f` Byzantine nodes placed per run under Condition 1.
    Byzantine(usize),
    /// `f` fail-silent nodes placed per run under Condition 1.
    FailSilent(usize),
    /// A fixed Byzantine node (Fig. 13 uses `(1, 19)`).
    FixedByzantine(u32, u32),
}

impl FaultRegime {
    /// The nominal fault count `f`.
    pub fn f(&self) -> usize {
        match self {
            FaultRegime::None => 0,
            FaultRegime::Byzantine(f) | FaultRegime::FailSilent(f) => *f,
            FaultRegime::FixedByzantine(..) => 1,
        }
    }

    /// Materialize the fault plan for one run.
    pub fn plan(&self, grid: &HexGrid, rng: &mut SimRng) -> FaultPlan {
        match *self {
            FaultRegime::None => FaultPlan::none(),
            FaultRegime::FixedByzantine(l, c) => {
                FaultPlan::none().with_node(grid.node(l, c as i64), NodeFault::Byzantine)
            }
            FaultRegime::Byzantine(f) | FaultRegime::FailSilent(f) => {
                let kind = if matches!(self, FaultRegime::Byzantine(_)) {
                    NodeFault::Byzantine
                } else {
                    NodeFault::FailSilent
                };
                let candidates = forwarder_candidates(grid.graph());
                let placed = place_condition1(grid.graph(), &candidates, f, rng, 10_000)
                    .expect("Condition-1 placement feasible");
                FaultPlan::none().with_nodes(&placed, kind)
            }
        }
    }
}

/// Result of one single-pulse run: the pulse view plus the faulty node set.
#[derive(Debug, Clone)]
pub struct RunView {
    /// Triggering-time matrix.
    pub view: PulseView,
    /// Faulty nodes of this run.
    pub faulty: Vec<NodeId>,
}

/// Run `exp.runs` independent single-pulse simulations of `scenario` under
/// `regime` and return their views. Timing uses generous timeouts (the
/// single-pulse regime of Section 3.1) unless faults are present, in which
/// case the Table-3-style timeouts for the scenario apply (stuck-at-1 links
/// interact with link timeouts).
pub fn single_pulse_batch(exp: &Experiment, scenario: Scenario, regime: FaultRegime) -> Vec<RunView> {
    let grid = exp.grid();
    run_batch(exp.runs, exp.threads, |run| {
        let seed = exp.seed + run as u64;
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5EED_0001);
        let offsets = scenario.single_pulse_times(exp.width, D_MINUS, D_PLUS, &mut rng);
        let schedule = Schedule::single_pulse(offsets);
        let faults = regime.plan(&grid, &mut rng);
        let cfg = SimConfig {
            timing: scenario_timing(scenario),
            faults,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &schedule, &cfg, seed);
        RunView {
            faulty: trace.faulty.clone(),
            view: PulseView::from_single_pulse(&grid, &trace),
        }
    })
}

/// The Condition-2 timing for a scenario, using the paper's Table-3 stable
/// skews.
pub fn scenario_timing(scenario: Scenario) -> Timing {
    let ix = Scenario::ALL
        .iter()
        .position(|&s| s == scenario)
        .expect("known scenario");
    Condition2::paper(Duration::from_ns(TABLE3_SIGMA_NS[ix])).timing()
}

/// The Condition-2 pulse separation `S` for a scenario (Table 3).
pub fn scenario_separation(scenario: Scenario) -> Duration {
    let ix = Scenario::ALL
        .iter()
        .position(|&s| s == scenario)
        .expect("known scenario");
    Condition2::paper(Duration::from_ns(TABLE3_SIGMA_NS[ix]))
        .derive()
        .separation
}

/// Cumulated skew samples + per-run summaries of a batch (the inputs of
/// Tables 1/2, Figs. 10/11 and the box plots of Figs. 15/16).
#[derive(Debug, Clone)]
pub struct BatchSkews {
    /// All intra-layer samples across runs.
    pub cumulated: SkewSamples,
    /// Per-run intra-layer summaries.
    pub per_run_intra: Vec<Summary>,
    /// Per-run inter-layer summaries.
    pub per_run_inter: Vec<Summary>,
}

/// Extract skews from a batch with `h`-hop fault exclusion.
pub fn batch_skews(exp: &Experiment, views: &[RunView], h: usize) -> BatchSkews {
    let grid = exp.grid();
    let mut cumulated = SkewSamples::default();
    let mut per_run_intra = Vec::with_capacity(views.len());
    let mut per_run_inter = Vec::with_capacity(views.len());
    for rv in views {
        let mask = exclusion_mask(&grid, &rv.faulty, h);
        let s = collect_skews(&grid, &rv.view, &mask);
        if let Some(sum) = Summary::from_durations(&s.intra) {
            per_run_intra.push(sum);
        }
        if let Some(sum) = Summary::from_durations(&s.inter) {
            per_run_inter.push(sum);
        }
        cumulated.extend(&s);
    }
    BatchSkews {
        cumulated,
        per_run_intra,
        per_run_inter,
    }
}

/// One multi-pulse stabilization run: the per-pulse views and faulty set.
#[derive(Debug, Clone)]
pub struct StabRun {
    /// Per-pulse triggering-time matrices.
    pub views: Vec<PulseView>,
    /// Faulty nodes.
    pub faulty: Vec<NodeId>,
}

/// Run the Section-4.4 stabilization batch: `pulses` pulses with the
/// scenario's Table-3 separation, arbitrary initial states, faults per
/// `regime`.
pub fn stabilization_batch(
    exp: &Experiment,
    scenario: Scenario,
    regime: FaultRegime,
    pulses: usize,
) -> Vec<StabRun> {
    let grid = exp.grid();
    let separation = scenario_separation(scenario);
    run_batch(exp.runs, exp.threads, |run| {
        let seed = exp.seed + run as u64;
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5EED_0002);
        let train = PulseTrain::new(scenario, pulses, separation);
        let schedule = train.generate(exp.width, &mut rng);
        let faults = regime.plan(&grid, &mut rng);
        let cfg = SimConfig {
            timing: scenario_timing(scenario),
            faults,
            init: InitState::Arbitrary,
            ..SimConfig::fault_free()
        };
        let trace = simulate(grid.graph(), &schedule, &cfg, seed);
        let views = assign_pulses(
            &grid,
            &trace,
            &schedule,
            hex_core::DelayRange::paper().mid(),
        );
        StabRun {
            faulty: trace.faulty.clone(),
            views,
        }
    })
}

/// A single representative run (Figs. 8/9/13/14 plot one wave).
pub fn single_wave(exp: &Experiment, scenario: Scenario, regime: FaultRegime) -> RunView {
    let one = Experiment { runs: 1, ..*exp };
    single_pulse_batch(&one, scenario, regime)
        .into_iter()
        .next()
        .expect("one run")
}

/// Render the paper's table row (intra avg/q95/max + inter min/q5/avg/q95/
/// max) from cumulated samples.
pub fn table_row(label: &str, skews: &BatchSkews) -> String {
    let intra = Summary::from_durations(&skews.cumulated.intra).expect("intra samples");
    let inter = Summary::from_durations(&skews.cumulated.inter).expect("inter samples");
    format!(
        "{label:<24} | {} | {}",
        intra.intra_row(),
        inter.inter_row()
    )
}

/// Zero-time schedule helper (tests, benches).
pub fn zero_schedule(w: u32) -> Schedule {
    Schedule::single_pulse(vec![Time::ZERO; w as usize])
}

/// The Fig. 15/16 fault sweep: for `f ∈ {0,…,5}` Byzantine nodes and
/// `h ∈ {0, 1}` exclusion radii, print the per-run skew op distributions
/// as box-plot CSV.
pub fn fault_sweep(exp: &Experiment, scenario: Scenario, title: &str) {
    use hex_analysis::boxplot::{op_boxes, sweep_csv, OpBoxes};
    for h in [0usize, 1] {
        println!(
            "\n{title}, scenario {}, h = {h}: per-run skew op distributions over {} runs (ns)",
            scenario.label(),
            exp.runs
        );
        let mut sweep_intra: Vec<(usize, OpBoxes)> = Vec::new();
        let mut sweep_inter: Vec<(usize, OpBoxes)> = Vec::new();
        for f in 0..=5usize {
            let views = single_pulse_batch(exp, scenario, FaultRegime::Byzantine(f));
            let skews = batch_skews(exp, &views, h);
            sweep_intra.push((f, op_boxes(&skews.per_run_intra)));
            sweep_inter.push((f, op_boxes(&skews.per_run_inter)));
        }
        println!("intra-layer:\n{}", sweep_csv(&sweep_intra));
        println!("inter-layer:\n{}", sweep_csv(&sweep_inter));
    }
}

/// The Fig. 18/19 stabilization sweep: for fault kinds Byzantine and
/// fail-silent, `f ∈ {0,…,5}` and threshold classes `C ∈ {0,…,3}`, print
/// average (± std) stabilization pulse and the number of stabilized runs.
pub fn stabilization_sweep(exp: &Experiment, scenario: Scenario, title: &str, pulses: usize) {
    use hex_analysis::skew::exclusion_mask;
    use hex_analysis::stabilization::{stabilization_pulse, summarize, Criterion};
    use hex_theory::bounds::lemma5_layer_bound;

    let grid = exp.grid();
    let source_spread = match scenario {
        Scenario::Zero => Duration::ZERO,
        Scenario::RandomDMinus => D_MINUS,
        Scenario::RandomDPlus => D_PLUS,
        Scenario::Ramp => D_PLUS.times((exp.width / 2) as i64),
    };
    println!(
        "\n{title}, scenario {}: stabilization over {} pulses, {} runs (avg pulse ± std | stabilized/runs)",
        scenario.label(),
        pulses,
        exp.runs
    );
    println!(
        "{:<12} {:>2} | {:>18} {:>18} {:>18} {:>18}",
        "fault kind", "f", "C=0", "C=1", "C=2", "C=3"
    );
    for byzantine in [true, false] {
        for f in 0..=5usize {
            let regime = if byzantine {
                FaultRegime::Byzantine(f)
            } else {
                FaultRegime::FailSilent(f)
            };
            let runs = stabilization_batch(exp, scenario, regime, pulses);
            let mut cells = Vec::new();
            for c in 0..=3u8 {
                let criterion = Criterion::class(c, D_PLUS, exp.length, |layer| {
                    lemma5_layer_bound(
                        source_spread,
                        layer,
                        f.min(layer as usize),
                        hex_core::DelayRange::paper(),
                    )
                });
                let estimates: Vec<Option<usize>> = runs
                    .iter()
                    .map(|r| {
                        let mask = exclusion_mask(&grid, &r.faulty, 0);
                        stabilization_pulse(&grid, &r.views, &mask, &criterion)
                    })
                    .collect();
                let stats = summarize(&estimates);
                cells.push(format!(
                    "{:>5.2}±{:<4.2} {:>3}/{:<3}",
                    stats.avg, stats.std, stats.stabilized, stats.runs
                ));
            }
            println!(
                "{:<12} {:>2} | {} ",
                if byzantine { "byzantine" } else { "fail-silent" },
                f,
                cells.join(" | ")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let e = Experiment::paper();
        assert_eq!(e.length, 50);
        assert_eq!(e.width, 20);
        assert_eq!(e.runs, 250);
    }

    #[test]
    fn single_pulse_batch_shapes() {
        let exp = Experiment::small();
        let views = single_pulse_batch(&exp, Scenario::Zero, FaultRegime::None);
        assert_eq!(views.len(), exp.runs);
        for rv in &views {
            assert!(rv.faulty.is_empty());
            assert_eq!(rv.view.spurious, 0);
        }
    }

    #[test]
    fn faulty_batch_places_faults() {
        let exp = Experiment::small();
        let views = single_pulse_batch(&exp, Scenario::RandomDPlus, FaultRegime::Byzantine(2));
        for rv in &views {
            assert_eq!(rv.faulty.len(), 2);
        }
        // Different runs place different faults (with overwhelming
        // probability across 20 runs).
        let distinct: std::collections::BTreeSet<_> =
            views.iter().map(|rv| rv.faulty.clone()).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn batch_skews_nonempty() {
        let exp = Experiment::small();
        let views = single_pulse_batch(&exp, Scenario::Zero, FaultRegime::None);
        let skews = batch_skews(&exp, &views, 0);
        assert_eq!(skews.per_run_intra.len(), exp.runs);
        assert_eq!(
            skews.cumulated.intra.len(),
            exp.runs * (exp.length * exp.width) as usize
        );
    }

    #[test]
    fn h1_excludes_more_than_h0() {
        let exp = Experiment::small();
        let views = single_pulse_batch(&exp, Scenario::RandomDPlus, FaultRegime::FailSilent(1));
        let h0 = batch_skews(&exp, &views, 0);
        let h1 = batch_skews(&exp, &views, 1);
        assert!(h1.cumulated.intra.len() < h0.cumulated.intra.len());
    }

    #[test]
    fn scenario_timing_matches_table3() {
        let t = scenario_timing(Scenario::RandomDPlus);
        assert!((t.link.lo.ns() - 35.25).abs() < 0.05);
        let s = scenario_separation(Scenario::Ramp);
        assert!((s.ns() - 316.40).abs() < 0.05);
    }

    #[test]
    fn stabilization_batch_shapes() {
        let exp = Experiment {
            runs: 3,
            ..Experiment::small()
        };
        let runs = stabilization_batch(&exp, Scenario::Zero, FaultRegime::None, 5);
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert_eq!(r.views.len(), 5);
        }
    }

    #[test]
    fn table_row_formats() {
        let exp = Experiment::small();
        let views = single_pulse_batch(&exp, Scenario::Zero, FaultRegime::None);
        let skews = batch_skews(&exp, &views, 0);
        let row = table_row("(i) 0", &skews);
        assert!(row.contains("(i) 0"));
        assert!(row.contains('|'));
    }
}
