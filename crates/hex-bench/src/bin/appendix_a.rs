//! Appendix A — single-fault skew degradation, position sweep.
//!
//! The appendix argues that one Byzantine node degrades the Section-3 skew
//! bounds by at most `O(d+)` *no matter where it sits or how it behaves*.
//! This driver sweeps the fault position over layers and columns, measures
//! the worst observed intra-layer skew (with `h ∈ {0, 1}` exclusion), and
//! compares it against the executable Appendix-A bound
//! (`hex_theory::appendix_a::single_fault_intra_bound`). It also exercises
//! the fault-avoiding causal-path machinery
//! (`hex_analysis::causal_faulty`) on every run: construction success,
//! causality of every link, the relaxed Lemma 2, and detour statistics.
//!
//! ```text
//! cargo run --release -p hex-bench --bin appendix_a
//! ```

use hex_analysis::causal_faulty::{
    check_causality, check_lemma2_relaxed, collect_avoid_stats, left_zigzag_with_shift, AvoidStats,
    FaultSet,
};
use hex_analysis::skew::{exclusion_mask, per_layer_max_intra};
use hex_bench::{FaultRegime, RunSpec};
use hex_clock::Scenario;
use hex_core::{FaultPlan, NodeFault, D_MINUS, D_PLUS, EPSILON};
use hex_des::{Duration, SimRng};
use hex_theory::appendix_a::{single_fault_intra_bound, LEMMA2_DETOUR_HOPS, SINGLE_FAULT_HOPS};
use hex_theory::Theorem1;

fn main() {
    let base = RunSpec::from_env();
    println!(
        "Appendix A sweep: {}x{} grid, {} runs per fault position, seed {}",
        base.length, base.width, base.runs, base.seed
    );
    println!(
        "degradation constants: intra {SINGLE_FAULT_HOPS} d+ per fault, \
         Lemma-2 slack {LEMMA2_DETOUR_HOPS} d+ per detour\n"
    );

    for scenario in [Scenario::Zero, Scenario::Ramp] {
        sweep(&base, scenario);
    }
}

fn sweep(base: &RunSpec, scenario: Scenario) {
    let grid = base.hex_grid();
    // Conservative Δ₀ estimate: worst skew potential over 64 draws.
    let mut rng = SimRng::seed_from_u64(base.seed ^ 0xA11D);
    let mut pot = Duration::ZERO;
    for _ in 0..64 {
        let offs = scenario.offsets(base.width, D_MINUS, D_PLUS, &mut rng);
        pot = pot.max(Scenario::skew_potential(&offs, D_MINUS));
    }
    let thm = Theorem1 {
        width: base.width,
        length: base.length,
        delays: hex_core::DelayRange::paper(),
        potential0: pot,
    };

    let fault_layers: Vec<u32> = [1u32, 2, 4, 8, 16, 32, base.length]
        .into_iter()
        .filter(|&l| l >= 1 && l <= base.length)
        .collect();
    let fault_cols: Vec<u32> = (0..base.width)
        .step_by((base.width as usize / 5).max(1))
        .collect();

    println!(
        "scenario {} (Δ0 ≤ {:.3} ns): worst intra-layer skew by fault layer",
        scenario.label(),
        pot.ns()
    );
    println!(
        "{:>6} | {:>12} {:>12} {:>7} | {:>12} | {:>10}",
        "f-layer", "worst h=0", "bound", "ratio", "worst h=1", "detours"
    );

    let mut lemma2_checked = 0usize;
    let mut causality_checked = 0usize;
    let mut stats_total = AvoidStats::default();

    for &fl in &fault_layers {
        let mut worst_h0 = Duration::ZERO;
        let mut worst_h1 = Duration::ZERO;
        let mut worst_bound = Duration::ZERO;
        let mut detours_here = 0usize;
        for &fc in &fault_cols {
            let victim = grid.node(fl, fc as i64);
            let spec = base
                .clone()
                .scenario(scenario)
                .faults(FaultRegime::Plan(
                    FaultPlan::none().with_node(victim, NodeFault::Byzantine),
                ))
                .runs(base.runs.min(40));
            for (run, rv) in spec.run_batch().into_iter().enumerate() {
                let view = rv.view();
                let fs = FaultSet::new(&grid, &rv.faulty);

                for (h, worst) in [(0usize, &mut worst_h0), (1, &mut worst_h1)] {
                    let mask = exclusion_mask(&grid, &rv.faulty, h);
                    for (ix, s) in per_layer_max_intra(&grid, view, &mask).iter().enumerate() {
                        let layer = ix as u32 + 1;
                        if let Some(s) = s {
                            *worst = (*worst).max(*s);
                            if h == 0 {
                                let b = single_fault_intra_bound(&thm, layer);
                                worst_bound = worst_bound.max(b);
                                assert!(
                                    *s <= b,
                                    "{} fault ({fl},{fc}) run {run}: layer {layer} skew \
                                     {s:?} > Appendix-A bound {b:?}",
                                    scenario.label()
                                );
                            }
                        }
                    }
                }

                // Causal machinery: probe the top layer plus the layer just
                // above the fault (where detours actually occur — a zig-zag
                // from far above rarely meets a single fault).
                if run < 8 {
                    for probe in [base.length, (fl + 1).min(base.length)] {
                        let stats = collect_avoid_stats(&grid, view, &fs, probe);
                        detours_here += stats.detour_links;
                        merge(&mut stats_total, &stats);
                        for col in 0..base.width as i64 {
                            if fs.contains(&grid, probe, col) {
                                continue;
                            }
                            let (path, shift) =
                                left_zigzag_with_shift(&grid, view, &fs, probe, col)
                                    .expect("fault-avoiding path exists");
                            causality_checked += check_causality(view, &path, D_MINUS)
                                .unwrap_or_else(|k| panic!("non-causal link {k}"));
                            lemma2_checked += check_lemma2_relaxed(
                                &grid,
                                view,
                                &fs,
                                &path,
                                col + shift,
                                D_MINUS,
                                D_PLUS,
                                EPSILON,
                                LEMMA2_DETOUR_HOPS,
                            )
                            .unwrap_or_else(|k| panic!("relaxed Lemma 2 violated at prefix {k}"));
                        }
                        if probe == base.length && fl + 1 >= base.length {
                            break; // same layer, don't double count
                        }
                    }
                }
            }
        }
        let ratio = if worst_bound > Duration::ZERO {
            worst_h0.ns() / worst_bound.ns()
        } else {
            0.0
        };
        println!(
            "{:>6} | {:>12.3} {:>12.3} {:>7.3} | {:>12.3} | {:>10}",
            fl,
            worst_h0.ns(),
            worst_bound.ns(),
            ratio,
            worst_h1.ns(),
            detours_here
        );
    }

    println!(
        "checks: {causality_checked} causal links, {lemma2_checked} relaxed-Lemma-2 prefixes, \
         0 violations"
    );
    println!(
        "paths: {} total, {} with detours, {} detour links, shifts 1/2/3 = {}/{}/{}, \
         {} triangular / {} layer-0\n",
        stats_total.paths,
        stats_total.with_detours,
        stats_total.detour_links,
        stats_total.shifts[0],
        stats_total.shifts[1],
        stats_total.shifts[2],
        stats_total.triangular,
        stats_total.layer0
    );
}

fn merge(into: &mut AvoidStats, from: &AvoidStats) {
    into.paths += from.paths;
    into.with_detours += from.with_detours;
    into.detour_links += from.detour_links;
    for k in 0..3 {
        into.shifts[k] += from.shifts[k];
    }
    into.triangular += from.triangular;
    into.layer0 += from.layer0;
}
