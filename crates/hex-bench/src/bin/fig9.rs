//! Fig. 9 — pulse wave propagation with layer-0 skews ramping up/down by
//! `d+` (scenario (iv)).
//!
//! The wave starts strongly tilted (the ramp) and the tilt visibly smooths
//! out after ≈ W − 2 layers, in accordance with Lemma 3.

use hex_analysis::wave::{wave_ascii, wave_front};
use hex_bench::{wave_table, Emitter, RunSpec};
use hex_clock::Scenario;

fn main() {
    let spec = RunSpec::from_env().scenario(Scenario::Ramp);
    let rv = spec.run_single();
    let grid = spec.hex_grid();
    println!(
        "Fig. 9: pulse wave, scenario (iv) ramp d+, {}x{} grid (ASCII relief, 30 layers)",
        spec.length, spec.width
    );
    print!("{}", wave_ascii(&grid, rv.view(), 30));
    println!("\nwave front (layer: min..max trigger time, ns):");
    for (layer, span) in wave_front(&grid, rv.view()) {
        if layer > 30 {
            break;
        }
        if let Some((lo, hi)) = span {
            println!(
                "  {layer:>3}: {lo:8.3} .. {hi:8.3}  (spread {:.3})",
                hi - lo
            );
        }
    }
    Emitter::from_env().emit(&wave_table("fig9_wave", &grid, rv.view()));
}
