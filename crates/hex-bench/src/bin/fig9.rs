//! Fig. 9 — pulse wave propagation with layer-0 skews ramping up/down by
//! `d+` (scenario (iv)).
//!
//! The wave starts strongly tilted (the ramp) and the tilt visibly smooths
//! out after ≈ W − 2 layers, in accordance with Lemma 3.

use hex_analysis::wave::{wave_ascii, wave_csv, wave_front};
use hex_bench::{single_wave, Experiment, FaultRegime};
use hex_clock::Scenario;

fn main() {
    let exp = Experiment::from_env();
    let rv = single_wave(&exp, Scenario::Ramp, FaultRegime::None);
    let grid = exp.grid();
    println!(
        "Fig. 9: pulse wave, scenario (iv) ramp d+, {}x{} grid (ASCII relief, 30 layers)",
        exp.length, exp.width
    );
    print!("{}", wave_ascii(&grid, &rv.view, 30));
    println!("\nwave front (layer: min..max trigger time, ns):");
    for (layer, span) in wave_front(&grid, &rv.view) {
        if layer > 30 {
            break;
        }
        if let Some((lo, hi)) = span {
            println!("  {layer:>3}: {lo:8.3} .. {hi:8.3}  (spread {:.3})", hi - lo);
        }
    }
    if std::env::var("HEX_CSV").is_ok() {
        println!("\n{}", wave_csv(&grid, &rv.view));
    }
}
