//! Fig. 20 — frequency multiplication on top of HEX pulses.
//!
//! HEX pulses are slow (pulse separation `S` is hundreds of nanoseconds),
//! so Section 5 locks a start/stoppable high-frequency oscillator to them:
//! each pulse launches a burst of `m` fast ticks that must die out before
//! the earliest possible next pulse (`m·ϑ·T_fast < Δ_min`,
//! metastability-free restart). This driver runs a real multi-pulse HEX
//! simulation on the paper grid, drives a per-node [`FreqMultiplier`] from
//! each node's actual pulse times, and measures the resulting fast-clock
//! skew between grid neighbors against the closed form
//! `hex_skew + (m−1)·(ϑ−1)·T_fast`.
//!
//! ```text
//! cargo run --release -p hex-bench --bin fig20
//! ```

use hex_bench::RunSpec;
use hex_clock::Scenario;
use hex_des::{Duration, SimRng, Time};
use hex_topo::freqmul::{tick_stream_skew, FreqMultiplier};

const THETA: f64 = 1.05;
const PULSES: usize = 6;

fn main() {
    let spec = RunSpec::from_env()
        .scenario(Scenario::RandomDPlus)
        .pulses(PULSES);
    let grid = spec.hex_grid();
    let separation = spec.separation();
    println!(
        "Fig. 20: frequency multiplication, {}x{} grid, scenario {}, S = {:.2} ns, θ = {THETA}",
        spec.length,
        spec.width,
        spec.scenario.label(),
        separation.ns()
    );

    // One representative multi-pulse run.
    let rv = spec.run_single();
    let views = &rv.views;

    // Per-node pulse trains and the measured pulse-separation floor Δ_min.
    let mut pulse_times: Vec<Vec<Time>> = vec![Vec::new(); grid.node_count()];
    for v in views {
        for layer in 0..=spec.length {
            for col in 0..spec.width as i64 {
                let n = grid.node(layer, col);
                pulse_times[n as usize].push(v.time(layer, col).expect("clean run"));
            }
        }
    }
    let min_sep = pulse_times
        .iter()
        .flat_map(|ts| ts.windows(2).map(|w| w[1] - w[0]))
        .min()
        .expect("multi-pulse run");
    // Worst measured HEX neighbor skew of this run (intra + inter, all
    // pulses) — the base term of the fast-skew decomposition.
    let mut hex_skew = Duration::ZERO;
    for v in views {
        for layer in 1..=spec.length {
            for col in 0..spec.width as i64 {
                let t = v.time(layer, col).unwrap();
                for (l2, c2) in [(layer, col + 1), (layer - 1, col), (layer - 1, col + 1)] {
                    hex_skew = hex_skew.max(t.abs_diff(v.time(l2, c2).unwrap()));
                }
            }
        }
    }
    println!(
        "measured: Δ_min = {:.2} ns, worst HEX neighbor skew = {:.3} ns ({} pulses)\n",
        min_sep.ns(),
        hex_skew.ns(),
        PULSES
    );

    println!(
        "{:>4} {:>8} | {:>10} {:>5} | {:>12} {:>12} {:>12} | {:>9}",
        "m", "T_fast", "burst", "fits", "worst meas.", "closed form", "HEX skew", "eff. MHz"
    );
    for (mult, fast_ns) in [
        (1u32, 2.0f64),
        (10, 2.0),
        (30, 2.0),
        (60, 2.0),
        (100, 2.0),
        (60, 1.0),
    ] {
        let fm = FreqMultiplier::new(mult, Duration::from_ns(fast_ns), THETA);
        let fits = fm.fits_within(min_sep);
        let mut measured = Duration::ZERO;
        if fits {
            // Each node's oscillator drifts independently; ticks are
            // aligned per (pulse, j) between neighbors.
            let mut tick_rng = SimRng::seed_from_u64(spec.seed ^ 0xF1620);
            let ticks: Vec<Vec<Time>> = pulse_times
                .iter()
                .map(|ts| fm.ticks(ts, &mut tick_rng))
                .collect();
            for layer in 1..=spec.length {
                for col in 0..spec.width as i64 {
                    let n = grid.node(layer, col) as usize;
                    for (l2, c2) in [(layer, col + 1), (layer - 1, col), (layer - 1, col + 1)] {
                        let m2 = grid.node(l2, c2) as usize;
                        if let Some(s) = tick_stream_skew(&ticks[n], &ticks[m2]) {
                            measured = measured.max(s);
                        }
                    }
                }
            }
        }
        let closed = fm.worst_fast_skew(hex_skew);
        let eff_mhz = mult as f64 * 1e3 / separation.ns();
        println!(
            "{:>4} {:>6.1}ns | {:>8.1}ns {:>5} | {:>10.3}ns {:>10.3}ns {:>10.3}ns | {:>9.1}",
            mult,
            fast_ns,
            fm.burst_length().ns(),
            if fits { "yes" } else { "no" },
            if fits { measured.ns() } else { f64::NAN },
            closed.ns(),
            hex_skew.ns(),
            eff_mhz
        );
        if fits {
            assert!(
                measured <= closed,
                "measured fast skew {measured:?} exceeds closed form {closed:?}"
            );
        }
    }
    println!(
        "\nshape: the fast-clock skew is the HEX skew plus a drift term\n\
         (m−1)·(θ−1)·T_fast — for practical θ = 1.05 the HEX skew dominates\n\
         (Section 5, 'the skew of the HEX pulses will usually dominate')."
    );
}
