//! Fig. 16 — box plots of intra-/inter-layer skews from 250 runs in
//! scenario (iv), `f ∈ {0,…,5}` Byzantine nodes, `h ∈ {0, 1}`.
//!
//! Expected shapes beyond Fig. 15: "a single fault essentially causes the
//! worst-case skew" (skew effects of multiple faults do not accumulate),
//! and "the maximal intra-layer skews typically exceed the inter-layer
//! skews" because the ramped wave propagates diagonally (Fig. 17's
//! explanation).

use hex_bench::{fault_sweep, RunSpec};
use hex_clock::Scenario;

fn main() {
    let spec = RunSpec::from_env().scenario(Scenario::Ramp);
    fault_sweep(&spec, "Fig. 16");
}
