//! HEX vs clock tree — the title claim, quantified.
//!
//! Three structural comparisons across grid sizes:
//!
//! 1. **neighbor wire length**: worst wire distance between physically
//!    adjacent clocked cells — Θ(1) for HEX, Θ(√n) for the H-tree;
//! 2. **single-fault blast radius**: expected fraction of cells silenced by
//!    one dead element — Θ(1/n) for HEX (a constant-size neighborhood),
//!    up to a whole subtree for the H-tree;
//! 3. **neighbor skew**: measured skews between adjacent cells under the
//!    same delay-uncertainty budget.

use hex_analysis::skew::{collect_skews, exclusion_mask};
use hex_analysis::stats::Summary;
use hex_bench::{zero_schedule, FaultRegime, RunSpec, TimingPolicy};
use hex_core::{FaultPlan, NodeFault};
use hex_des::SimRng;
use hex_tree::{
    blast_radius, leaf_skews, neighbor_wire_distance, worst_blast_radius, HTree, HTreeConfig,
};

fn main() {
    println!("HEX vs buffered H-tree (same delay-per-hop budget)\n");
    println!(
        "{:>6} {:>5} | {:>13} {:>12} | {:>10} {:>10} {:>10} | {:>9} {:>9}",
        "cells",
        "side",
        "tree nbr wire",
        "hex nbr wire",
        "tree E[bl]",
        "tree worst",
        "hex silenced",
        "tree skew",
        "hex skew"
    );
    for depth in [3u32, 4, 5] {
        let side = 1usize << depth;
        let cells = side * side;

        // --- H-tree ---
        let tree = HTree::build(HTreeConfig::paper_comparable(depth));
        let tree_nbr_wire = neighbor_wire_distance(&tree);
        let mut rng = SimRng::seed_from_u64(7);
        let tree_blast = blast_radius(&tree, 100, &mut rng);
        let tree_worst = worst_blast_radius(&tree);
        let mut tree_sk = Vec::new();
        for _ in 0..20 {
            let arrivals = tree.simulate_pulse(&[], &mut rng);
            tree_sk.extend(leaf_skews(&tree, &arrivals));
        }
        let tree_skew = Summary::from_durations(&tree_sk).unwrap();

        // --- HEX of comparable size: (side-1) layers x side columns ---
        let (l, w) = ((side as u32).max(2) - 1, (side as u32).max(3));
        let base = RunSpec::grid(l.max(1), w)
            .schedule(zero_schedule(w))
            .timing(TimingPolicy::Generous);
        let grid = base.hex_grid();
        // Neighbor wire in a HEX embedding is one grid pitch by
        // construction (Section 1: Θ(1) with optimal layout).
        let hex_nbr_wire = 1.0f64;
        // HEX blast: one fail-silent node (Condition 1 holds) — count the
        // correct nodes it actually silences: zero; the damage is a bounded
        // skew perturbation, not an outage.
        let victim = grid.node(l / 2, (w / 2) as i64);
        let (trace, _) = base
            .clone()
            .faults(FaultRegime::Plan(
                FaultPlan::none().with_node(victim, NodeFault::FailSilent),
            ))
            .seed(1)
            .trace(0);
        let silenced = grid
            .graph()
            .node_ids()
            .filter(|&n| n != victim && trace.unique_fire(n).is_none())
            .count();
        let hex_silenced = silenced as f64 / grid.node_count() as f64;

        let mut hex_sk = Vec::new();
        let mask = exclusion_mask(&grid, &[], 0);
        for rv in base.clone().seed(0).runs(20).run_batch() {
            hex_sk.extend(collect_skews(&grid, rv.view(), &mask).intra);
        }
        let hex_skew = Summary::from_durations(&hex_sk).unwrap();

        println!(
            "{:>6} {:>5} | {:>13.1} {:>12.1} | {:>9.1}% {:>9.1}% {:>11.1}% | {:>9.3} {:>9.3}",
            cells,
            side,
            tree_nbr_wire,
            hex_nbr_wire,
            tree_blast * 100.0,
            tree_worst * 100.0,
            hex_silenced * 100.0,
            tree_skew.max,
            hex_skew.max
        );
    }
    println!("\nwire in leaf pitches; blast = fraction of cells silenced by one dead buffer");
    println!("(tree: expected over internal buffers / worst single buffer; HEX: one fail-silent");
    println!("node under Condition 1); skew = max neighbor skew (ns) over 20 pulses, fault-free.");
}
