//! Theorem 1 cross-check — measured worst skews vs. the analytic bounds,
//! per scenario.
//!
//! For each scenario this prints the measured max intra-layer skew (over
//! `HEX_RUNS` runs) next to the Theorem-1 bound for the scenario's skew
//! potential, and verifies measured ≤ bound. It also reports the per-layer
//! split (transient layers ℓ ≤ 2W−3 vs steady layers) for the ramp
//! scenario, where Lemma 3's potential decay is the interesting part.

use hex_analysis::skew::{exclusion_mask, per_layer_max_intra};
use hex_analysis::stats::Summary;
use hex_bench::{batch_skews_from_views, RunSpec};
use hex_clock::Scenario;
use hex_core::{D_MINUS, D_PLUS};
use hex_des::Duration;
use hex_des::SimRng;
use hex_theory::bounds::Theorem1;

fn main() {
    let base = RunSpec::from_env();
    let delays = hex_core::DelayRange::paper();
    println!(
        "Theorem 1 cross-check: {} runs, {}x{} grid, eps <= d+/7: {}",
        base.runs,
        base.length,
        base.width,
        delays.satisfies_theorem1_constraint()
    );
    println!(
        "{:<24} {:>12} {:>12} {:>8}",
        "scenario", "measured max", "bound", "ratio"
    );
    for scenario in Scenario::ALL {
        // Worst-case potential of the scenario (max over a sampling of
        // offset draws; exact for deterministic scenarios).
        let mut rng = SimRng::seed_from_u64(base.seed);
        let mut pot = Duration::ZERO;
        for _ in 0..32 {
            let offs = scenario.offsets(base.width, D_MINUS, D_PLUS, &mut rng);
            pot = pot.max(Scenario::skew_potential(&offs, D_MINUS));
        }
        let thm = Theorem1 {
            width: base.width,
            length: base.length,
            delays,
            potential0: pot,
        };
        let spec = base.clone().scenario(scenario);
        let grid = spec.hex_grid();
        // The per-layer ramp detail below needs the views themselves, so
        // materialize once and fold sequentially.
        let views = spec.run_batch();
        let skews = batch_skews_from_views(&grid, &views, 0);
        let measured = Summary::from_durations(&skews.cumulated.intra).unwrap();
        let bound = thm.intra_max();
        let ok = measured.max <= bound.ns() + 1e-9;
        println!(
            "{:<24} {:>12.3} {:>12.3} {:>8.2} {}",
            scenario.label(),
            measured.max,
            bound.ns(),
            measured.max / bound.ns(),
            if ok { "OK" } else { "VIOLATED" }
        );
        assert!(ok, "Theorem 1 violated for {}", scenario.label());

        if scenario == Scenario::Ramp {
            // Per-layer detail: the transient (ℓ < 2W−2) vs steady regime.
            let mask = exclusion_mask(&grid, &[], 0);
            let mut transient_max = Duration::ZERO;
            let mut steady_max = Duration::ZERO;
            for rv in &views {
                for (ix, s) in per_layer_max_intra(&grid, rv.view(), &mask)
                    .into_iter()
                    .enumerate()
                {
                    let layer = ix as u32 + 1;
                    if let Some(s) = s {
                        if layer <= 2 * base.width - 3 {
                            transient_max = transient_max.max(s);
                        } else {
                            steady_max = steady_max.max(s);
                        }
                    }
                }
            }
            println!(
                "    ramp detail: transient layers max {:.3} ns (bound {:.3}), steady layers max {:.3} ns (bound {:.3})",
                transient_max.ns(),
                thm.intra(1).ns().max(thm.intra(2 * base.width - 3).ns()),
                steady_max.ns(),
                thm.steady_intra().ns()
            );
            assert!(steady_max <= thm.steady_intra());
        }
    }
    println!("all scenarios within Theorem-1 bounds");
}
