//! Fig. 15 — box plots of intra-/inter-layer skews from 250 runs in
//! scenario (iii), for `f ∈ {0,…,5}` Byzantine nodes, with `h ∈ {0, 1}`
//! hop exclusion around the faults.
//!
//! Expected shapes: skews increase *moderately* with f (far slower than the
//! worst-case ≈ 5·f·d+), and with `h = 1` the fault effects essentially
//! disappear (fault locality).

use hex_bench::{fault_sweep, RunSpec};
use hex_clock::Scenario;

fn main() {
    let spec = RunSpec::from_env().scenario(Scenario::RandomDPlus);
    fault_sweep(&spec, "Fig. 15");
}
