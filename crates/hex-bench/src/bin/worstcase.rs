//! Worst-case landscape: random delays vs. automated adversarial search
//! vs. hand construction vs. the Theorem-1 bound.
//!
//! Quantifies how much of the analytic worst case each method reaches —
//! the tightness story of Section 3.1 (Fig. 5 and the Lemma-4 remark).

use hex_bench::construction_spec;
use hex_core::{DelayRange, HexGrid};
use hex_des::{SimRng, Time};
use hex_theory::adversary::fault_free_worst_case;
use hex_theory::appendix_a::single_fault_intra_bound;
use hex_theory::bounds::Theorem1;
use hex_theory::search::{byzantine_worst_case_search, random_baseline, worst_case_search};

fn main() {
    let delays = DelayRange::paper();
    let (l, w) = (20u32, 20u32);
    let grid = HexGrid::new(l, w);

    // 1. Random delays (what Table 1 sees).
    let random = random_baseline(&grid, l, delays, 100, 7);

    // 2. Automated hill-climbing over deterministic delay tables (Δ0 = 0).
    let mut searched = hex_des::Duration::ZERO;
    for seed in 0..6u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        searched = searched.max(worst_case_search(&grid, l, delays, 400, &mut rng).skew);
    }

    // 3. The hand construction of Fig. 5 (barrier + skew potential).
    let c = fault_free_worst_case(l, w, 8, 16, delays);
    let rv = construction_spec(&c, 1).run_single();
    let ((la, ca), (lb, cb)) = c.focus;
    let constructed = rv
        .view()
        .time(la, ca)
        .unwrap()
        .abs_diff(rv.view().time(lb, cb).unwrap());

    // 4. Theorem-1 bounds.
    let steady = Theorem1 {
        width: w,
        length: l,
        delays,
        potential0: hex_des::Duration::ZERO,
    }
    .steady_intra();

    println!(
        "Worst-case neighbor skew landscape ({l}x{w} grid, [d-,d+] = [{:.3},{:.3}] ns):",
        delays.lo.ns(),
        delays.hi.ns()
    );
    println!(
        "  random delays, 100 runs (Δ0=0):        {:>7.3} ns",
        random.ns()
    );
    println!(
        "  adversarial search, 6x400 iters (Δ0=0): {:>7.3} ns",
        searched.ns()
    );
    println!(
        "  Theorem-1 steady bound (Δ0=0):          {:>7.3} ns",
        steady.ns()
    );
    println!(
        "  Fig.-5 construction (barrier + Δ0>0):   {:>7.3} ns",
        constructed.ns()
    );
    println!(
        "\nsearch reaches {:.0}% of the Δ0=0 bound; the barrier construction escapes it via skew potential (Lemma 4's Δ0 term).",
        100.0 * searched.ns() / steady.ns()
    );
    assert!(searched <= steady, "search must respect the bound");

    // 5. Joint delay + Byzantine-behavior search (Appendix A / Fig. 17
    //    regime: ramp offsets, one fault, climber tunes delays and the
    //    fault's per-link stuck-0/1 profile).
    let ramp: Vec<Time> = {
        let mut t = Time::ZERO;
        (0..w)
            .map(|i| {
                let cur = t;
                if i < w / 2 {
                    t += delays.hi;
                } else {
                    t -= delays.hi;
                }
                cur
            })
            .collect()
    };
    let fault = grid.node(4, w as i64 / 2);
    let probe_layer = 5u32;
    let mut byz_best = hex_des::Duration::ZERO;
    let mut byz_initial = hex_des::Duration::ZERO;
    for seed in 0..4u64 {
        let mut rng = SimRng::seed_from_u64(100 + seed);
        let r = byzantine_worst_case_search(
            &grid,
            probe_layer,
            fault,
            ramp.clone(),
            delays,
            300,
            &mut rng,
        );
        byz_initial = byz_initial.max(r.initial_skew);
        byz_best = byz_best.max(r.skew);
    }
    let ramp_thm = Theorem1 {
        width: w,
        length: l,
        delays,
        potential0: delays.uncertainty().times((w / 2) as i64),
    };
    let byz_bound = single_fault_intra_bound(&ramp_thm, probe_layer);
    println!(
        "\nByzantine landscape (ramp Δ0, 1 fault at (4,{}), probe layer {probe_layer}):",
        w / 2
    );
    println!(
        "  Fig.-17 starting profile:               {:>7.3} ns ({:.1} d+)",
        byz_initial.ns(),
        byz_initial.ns() / delays.hi.ns()
    );
    println!(
        "  joint delay+behavior search, 4x300:     {:>7.3} ns ({:.1} d+)",
        byz_best.ns(),
        byz_best.ns() / delays.hi.ns()
    );
    println!(
        "  Appendix-A single-fault bound:          {:>7.3} ns",
        byz_bound.ns()
    );
    assert!(
        byz_best <= byz_bound,
        "Byzantine search must respect the Appendix-A bound"
    );
    println!(
        "search reaches {:.0}% of the Appendix-A degradation budget.",
        100.0 * byz_best.ns() / byz_bound.ns()
    );
}
