//! Fig. 17 — the deterministic single-Byzantine worst case: ramp scenario,
//! all delays `d+`, a Byzantine node tearing its two upper neighbors apart.
//!
//! The paper's construction yields an intra-layer skew of `5·d+` between
//! the fault's upper neighbors, with the inter-layer skew smaller by `d+`.
//! This binary sweeps the Byzantine profile and position and reports the
//! worst skews found, next to the fault-free ramp baseline of exactly
//! `d+`.

use hex_bench::{construction_spec, RunView};
use hex_core::D_PLUS;
use hex_des::Duration;
use hex_theory::adversary::{byzantine_ramp, ByzProfile, Construction};

fn run(c: &Construction) -> RunView {
    construction_spec(c, 1).run_single()
}

fn main() {
    let delays = hex_core::DelayRange::paper();
    let (length, width, byz_layer) = (16u32, 20u32, 5u32);
    println!("Fig. 17: deterministic single-Byzantine worst case (all delays d+, ramp layer 0)");
    println!(
        "d+ = {:.3} ns; paper's constructed skew: 5*d+ = {:.3} ns",
        D_PLUS.ns(),
        D_PLUS.ns() * 5.0
    );

    let mut best_intra = Duration::ZERO;
    let mut best_inter = Duration::ZERO;
    let mut best_at = (ByzProfile::silent(), 0u32);
    for profile in ByzProfile::sweep() {
        for byz_col in 0..width {
            let c = byzantine_ramp(length, width, byz_layer, byz_col, profile, delays);
            let rv = run(&c);
            let view = rv.view();
            let ((la, ca), (lb, cb)) = c.focus;
            let (Some(ta), Some(tb)) = (view.time(la, ca), view.time(lb, cb)) else {
                continue;
            };
            let intra = ta.abs_diff(tb);
            if intra > best_intra {
                best_intra = intra;
                best_at = (profile, byz_col);
            }
            // Inter-layer skew around the fault: upper neighbors vs their
            // layer-(byz_layer) in-neighbors, skipping the fault itself.
            for (ul, uc) in [(la, ca), (lb, cb)] {
                for lower in [uc, uc + 1] {
                    if lower.rem_euclid(width as i64) == byz_col as i64 {
                        continue;
                    }
                    if let (Some(tu), Some(tl)) = (view.time(ul, uc), view.time(ul - 1, lower)) {
                        best_inter = best_inter.max(tu.abs_diff(tl));
                    }
                }
            }
        }
    }
    println!(
        "worst intra-layer skew between the fault's upper neighbors: {:.3} ns = {:.2}*d+  (profile {:?}, col {})",
        best_intra.ns(),
        best_intra.ns() / D_PLUS.ns(),
        best_at.0,
        best_at.1
    );
    println!(
        "worst inter-layer skew around the fault:                    {:.3} ns = {:.2}*d+",
        best_inter.ns(),
        best_inter.ns() / D_PLUS.ns()
    );
    println!(
        "fault-free ramp baseline (neighbor skew):                    {:.3} ns = 1.00*d+",
        D_PLUS.ns()
    );
}
