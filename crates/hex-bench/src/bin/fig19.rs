//! Fig. 19 — stabilization times under scenario (iv) (ramp layer-0 skews):
//! the companion of Fig. 18 with the adversarial source pattern.

use hex_bench::{stabilization_sweep, Experiment};
use hex_clock::Scenario;

fn main() {
    let exp = Experiment::from_env();
    stabilization_sweep(&exp, Scenario::Ramp, "Fig. 19", 10);
}
