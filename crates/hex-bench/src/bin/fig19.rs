//! Fig. 19 — stabilization times under scenario (iv) (ramp layer-0 skews):
//! the companion of Fig. 18 with the adversarial source pattern.

use hex_bench::{stabilization_sweep, RunSpec};
use hex_clock::Scenario;

fn main() {
    let spec = RunSpec::from_env().scenario(Scenario::Ramp);
    stabilization_sweep(&spec, "Fig. 19", 10);
}
