//! Fig. 14 — pulse propagation for scenario (iv) with five Byzantine nodes
//! (uniform Condition-1 placement, random per-link stuck behaviour).

use hex_analysis::skew::{collect_skews, exclusion_mask};
use hex_analysis::stats::Summary;
use hex_analysis::wave::wave_ascii;
use hex_bench::{wave_table, Emitter, FaultRegime, RunSpec};
use hex_clock::Scenario;

fn main() {
    let spec = RunSpec::from_env()
        .scenario(Scenario::Ramp)
        .faults(FaultRegime::Byzantine(5));
    let grid = spec.hex_grid();
    let rv = spec.run_single();

    println!("Fig. 14: wave with five Byzantine nodes, scenario (iv)");
    println!(
        "faulty nodes: {:?}",
        rv.faulty
            .iter()
            .map(|&n| grid.coord_of(n))
            .collect::<Vec<_>>()
    );
    print!("{}", wave_ascii(&grid, rv.view(), 30));

    for h in [0usize, 1] {
        let mask = exclusion_mask(&grid, &rv.faulty, h);
        let s = collect_skews(&grid, rv.view(), &mask);
        let sum = Summary::from_durations(&s.intra).unwrap();
        println!(
            "h={h}: intra-layer skews avg {:>6.3} q95 {:>6.3} max {:>6.3} (n={})",
            sum.avg, sum.q95, sum.max, sum.n
        );
    }
    Emitter::from_env().emit(&wave_table("fig14_wave", &grid, rv.view()));
}
