//! Condition-1 fault density (Section 3.2's probability claim).
//!
//! "If we place f faults uniformly at random in a grid of n nodes, the
//! probability that [Condition 1] is satisfied is bounded from below by
//! `(1 − 13(f−1)/n)^f`. In expectation, a uniformly random subset of
//! `Θ(√n)` nodes may fail before it becomes violated." This driver checks
//! both statements on real grids: Monte Carlo satisfaction frequency
//! versus the two closed-form lower bounds, and the measured break-even
//! fault count versus `√n` scaling.
//!
//! ```text
//! cargo run --release -p hex-bench --bin condition1_density
//! ```

use hex_bench::RunSpec;
use hex_core::fault::satisfies_condition1;
use hex_core::HexGrid;
use hex_des::SimRng;
use hex_theory::condition1::{
    condition1_probability_display, condition1_probability_product, max_faults_at_probability,
};

fn main() {
    // No simulation here — the spec only carries the Monte-Carlo trial
    // count (HEX_RUNS, default 2000) and the seed (HEX_SEED).
    let spec = RunSpec::paper().runs(2_000).with_env();
    let trials = spec.runs;

    println!("Condition-1 probability, {trials} Monte Carlo trials per cell\n");
    println!(
        "{:>9} {:>6} {:>3} | {:>9} {:>9} {:>9}",
        "grid", "n", "f", "measured", "product", "display"
    );
    for (l, w) in [(50u32, 20u32), (25, 10), (100, 40)] {
        let grid = HexGrid::new(l, w);
        // The paper places faults among ALL n = W·(L+1) nodes — clock
        // sources may be faulty too (Byzantine clock sources, §1).
        let candidates: Vec<u32> = grid.graph().node_ids().collect();
        let n = grid.node_count();
        let mut rng = SimRng::seed_from_u64(spec.seed);
        for f in [2usize, 5, 10, 20] {
            if f > candidates.len() {
                continue;
            }
            let mut ok = 0usize;
            for _ in 0..trials {
                let mut pool = candidates.clone();
                rng.shuffle(&mut pool);
                let mut pick = pool[..f].to_vec();
                pick.sort_unstable();
                if satisfies_condition1(grid.graph(), &pick) {
                    ok += 1;
                }
            }
            let measured = ok as f64 / trials as f64;
            let product = condition1_probability_product(n, f);
            let display = condition1_probability_display(n, f);
            assert!(
                measured + 0.05 >= display,
                "measured frequency fell below the closed-form lower bound"
            );
            println!(
                "{:>5}x{:<3} {:>6} {:>3} | {:>9.3} {:>9.3} {:>9.3}",
                l, w, n, f, measured, product, display
            );
        }
    }

    println!("\nΘ(√n) break-even (largest f with display bound ≥ 1/2):");
    println!("{:>8} {:>6} {:>8}", "n", "f(1/2)", "f/√n");
    for n in [500usize, 1_020, 2_000, 4_080, 8_000, 16_320] {
        let f = max_faults_at_probability(n, 0.5);
        println!("{:>8} {:>6} {:>8.3}", n, f, f as f64 / (n as f64).sqrt());
    }
    println!(
        "\nshape: the measured satisfaction frequency tracks the product form within \
         Monte-Carlo noise (the forbidden regions barely overlap at these densities) and \
         clearly dominates the displayed (1 − 13(f−1)/n)^f relaxation; the break-even f \
         grows as ~0.2·√n — the paper's 'a uniformly random subset of Θ(√n) nodes may \
         fail'."
    );
}
