//! Fig. 13 — pulse propagation for scenario (i) with one Byzantine node at
//! `(1, 19)` sending constant 1 to its same-layer neighbors and constant 0
//! upward.
//!
//! Expected shape: "the increase in skews emanating from the faulty node
//! fades with the distance from the fault location" (fault locality).

use hex_analysis::skew::{collect_skews, exclusion_mask};
use hex_analysis::stats::Summary;
use hex_analysis::wave::wave_ascii;
use hex_bench::Experiment;
use hex_clock::Scenario;
use hex_core::{FaultPlan, LinkBehavior, NodeFault};
use hex_des::{Schedule, SimRng};
use hex_sim::{simulate, PulseView, SimConfig};

fn main() {
    let exp = Experiment::from_env();
    let grid = exp.grid();
    let byz = grid.node(1, 19);

    // The figure's exact behaviour: constant 1 to left/right, constant 0 to
    // both upper neighbors.
    let mut faults = FaultPlan::none().with_node(byz, NodeFault::Byzantine);
    for &l in grid.graph().out_links(byz) {
        let dst = grid.graph().link(l).dst;
        let c = grid.coord_of(dst);
        let behavior = if c.layer == 1 {
            LinkBehavior::StuckOne
        } else {
            LinkBehavior::StuckZero
        };
        faults = faults.with_link(l, behavior);
    }

    let mut rng = SimRng::seed_from_u64(exp.seed);
    let offsets = Scenario::Zero.single_pulse_times(
        exp.width,
        hex_core::D_MINUS,
        hex_core::D_PLUS,
        &mut rng,
    );
    let cfg = SimConfig {
        timing: hex_bench::scenario_timing(Scenario::Zero),
        faults,
        ..SimConfig::fault_free()
    };
    let trace = simulate(grid.graph(), &Schedule::single_pulse(offsets), &cfg, exp.seed);
    let view = PulseView::from_single_pulse(&grid, &trace);

    println!("Fig. 13: wave with Byzantine node at (1,19), scenario (i)");
    print!("{}", wave_ascii(&grid, &view, 30));

    // Fault locality: skews near the fault vs. far away.
    for h in [0usize, 1, 2] {
        let mask = exclusion_mask(&grid, &[byz], h);
        let s = collect_skews(&grid, &view, &mask);
        let sum = Summary::from_durations(&s.intra).unwrap();
        println!(
            "h={h}: intra-layer skews avg {:>6.3} q95 {:>6.3} max {:>6.3} (n={})",
            sum.avg, sum.q95, sum.max, sum.n
        );
    }
}
