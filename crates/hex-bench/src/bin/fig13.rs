//! Fig. 13 — pulse propagation for scenario (i) with one Byzantine node at
//! `(1, 19)` sending constant 1 to its same-layer neighbors and constant 0
//! upward.
//!
//! Expected shape: "the increase in skews emanating from the faulty node
//! fades with the distance from the fault location" (fault locality).

use hex_analysis::skew::{collect_skews, exclusion_mask};
use hex_analysis::stats::Summary;
use hex_analysis::wave::wave_ascii;
use hex_bench::{wave_table, Emitter, FaultRegime, RunSpec};
use hex_clock::Scenario;
use hex_core::{FaultPlan, LinkBehavior, NodeFault};

fn main() {
    let base = RunSpec::from_env().scenario(Scenario::Zero);
    let grid = base.hex_grid();
    let byz = grid.node(1, 19);

    // The figure's exact behaviour: constant 1 to left/right, constant 0 to
    // both upper neighbors.
    let mut faults = FaultPlan::none().with_node(byz, NodeFault::Byzantine);
    for &l in grid.graph().out_links(byz) {
        let dst = grid.graph().link(l).dst;
        let c = grid.coord_of(dst);
        let behavior = if c.layer == 1 {
            LinkBehavior::StuckOne
        } else {
            LinkBehavior::StuckZero
        };
        faults = faults.with_link(l, behavior);
    }

    let rv = base.faults(FaultRegime::Plan(faults)).run_single();

    println!("Fig. 13: wave with Byzantine node at (1,19), scenario (i)");
    print!("{}", wave_ascii(&grid, rv.view(), 30));

    // Fault locality: skews near the fault vs. far away.
    for h in [0usize, 1, 2] {
        let mask = exclusion_mask(&grid, &[byz], h);
        let s = collect_skews(&grid, rv.view(), &mask);
        let sum = Summary::from_durations(&s.intra).unwrap();
        println!(
            "h={h}: intra-layer skews avg {:>6.3} q95 {:>6.3} max {:>6.3} (n={})",
            sum.avg, sum.q95, sum.max, sum.n
        );
    }
    Emitter::from_env().emit(&wave_table("fig13_wave", &grid, rv.view()));
}
