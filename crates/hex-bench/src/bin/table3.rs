//! Table 3 — assumed stable skews σ and the Condition-2 timeout values
//! used in the stabilization experiments (ns).
//!
//! Paper reference:
//!
//! ```text
//! scenario                σ      T-link  T+link  T-sleep T+sleep S
//! (i)   0                 28.48  31.98   33.58   83.56   87.74   264.08
//! (ii)  random in [0,d-]  31.16  34.66   36.39   89.18   93.64   275.60
//! (iii) random in [0,d+]  31.75  35.25   37.01   90.42   94.94   278.14
//! (iv)  ramp d+           40.64  44.14   46.34   109.08  114.53  316.40
//! ```
//!
//! The derivation includes the paper's footnote-10 pulse-width allowance
//! (2.464 ns); the bare Condition-2 values (allowance 0) are printed as a
//! second block.

use hex_clock::Scenario;
use hex_core::condition2::{Condition2, TABLE3_SIGMA_NS};
use hex_des::Duration;

fn print_block(title: &str, pulse_width: Duration) {
    println!("{title}");
    println!(
        "{:<24} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "sigma", "T-link", "T+link", "T-sleep", "T+sleep", "S"
    );
    for (ix, scenario) in Scenario::ALL.iter().enumerate() {
        let sigma = Duration::from_ns(TABLE3_SIGMA_NS[ix]);
        let c2 = Condition2 {
            pulse_width,
            ..Condition2::paper(sigma)
        };
        let d = c2.derive();
        println!(
            "{:<24} {:>7.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            scenario.label(),
            sigma.ns(),
            d.t_link_min.ns(),
            d.t_link_max.ns(),
            d.t_sleep_min.ns(),
            d.t_sleep_max.ns(),
            d.separation.ns()
        );
    }
}

fn main() {
    print_block(
        "Table 3: Condition-2 timeouts (ns), with footnote-10 pulse-width allowance (paper values)",
        Duration::from_ps(2_464),
    );
    println!();
    print_block("Bare Condition 2 (pulse-width allowance 0)", Duration::ZERO);
}
