//! Process-variation sensitivity study.
//!
//! The paper's random mode draws every message delay iid uniform in
//! `[d−, d+]`. Real dies see *correlated* variation: slow corners, radial
//! gradients, per-route static offsets. All of these stay inside
//! `[d−, d+]`, so every theorem still applies — but the skew
//! *distributions* change, and this driver quantifies how much margin the
//! worst-case analysis buys:
//!
//! * iid per message (the paper's default; averaging hides variation),
//! * static per link (each route fixed at a random point of the range),
//! * layer gradient (bottom of the die fast, top slow),
//! * column wave (one slow sector around the cylinder),
//! * combined gradient + wave + jitter.
//!
//! ```text
//! cargo run --release -p hex-bench --bin variation
//! ```

use hex_analysis::stats::Summary;
use hex_bench::{batch_skews, RunSpec, TimingPolicy};
use hex_clock::Scenario;
use hex_core::{DelayModel, DelayRange, SpatialVariation};
use hex_theory::theorem1_intra_bound;

fn spatial(layer_gradient: f64, column_wave: f64, jitter: f64) -> DelayModel {
    DelayModel::Spatial(SpatialVariation {
        range: DelayRange::paper(),
        layer_gradient,
        column_wave,
        jitter,
    })
}

fn main() {
    // Generous single-pulse timeouts, like the pre-RunSpec version of this
    // driver — the published prose below quotes those numbers.
    let base = RunSpec::from_env()
        .scenario(Scenario::RandomDPlus)
        .timing(TimingPolicy::Generous);
    let bound = theorem1_intra_bound(base.width, DelayRange::paper());
    println!(
        "Process variation: {}x{} grid, scenario {}, {} runs; Theorem-1 bound {:.3} ns\n",
        base.length,
        base.width,
        base.scenario.label(),
        base.runs,
        bound.ns()
    );

    let models: Vec<(&str, DelayModel)> = vec![
        ("iid per message", DelayModel::paper()),
        (
            "static per link",
            DelayModel::UniformPerLink(DelayRange::paper()),
        ),
        ("layer gradient", spatial(1.0, 0.0, 0.0)),
        ("column wave", spatial(0.0, 1.0, 0.0)),
        ("gradient+wave+jitter", spatial(0.6, 0.6, 0.4)),
    ];

    println!(
        "{:<22} | {:>8} {:>8} {:>8} | {:>8} {:>8} | {:>9}",
        "delay model", "intra avg", "q95", "max", "inter avg", "max", "bound use"
    );
    for (label, model) in models {
        let skews = batch_skews(&base.clone().delays(model), 0);
        let si = Summary::from_durations(&skews.cumulated.intra).unwrap();
        let se = Summary::from_durations(&skews.cumulated.inter).unwrap();
        assert!(
            si.max <= bound.ns() + 1e-9,
            "{label}: measured max {:.3} exceeds the Theorem-1 bound {:.3}",
            si.max,
            bound.ns()
        );
        println!(
            "{:<22} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} | {:>8.1}%",
            label,
            si.avg,
            si.q95,
            si.max,
            se.avg,
            se.max,
            100.0 * si.max / bound.ns()
        );
    }
    println!(
        "\nshapes: every correlated-variation model stays within the Theorem-1 bound (all \
         delays remain in [d−, d+]). Static per-link variation is statistically \
         indistinguishable from iid here — the 2-of-adjacent guard mixes four different \
         links per firing, re-averaging what the static draw froze. A pure layer gradient \
         makes delays locally near-uniform, *collapsing* the typical intra-layer skew \
         (avg ~5x smaller) while shifting the inter-layer bias with height. The column \
         wave is the harsh case: a persistent intra-layer skew ridge at the sector \
         boundaries (~2.5x the iid q95) — the closest realistic analogue of the \
         adversarial Fig.-5 construction, yet still at ~68% of the worst-case bound."
    );
}
