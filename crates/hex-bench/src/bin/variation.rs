//! Process-variation sensitivity study.
//!
//! The paper's random mode draws every message delay iid uniform in
//! `[d−, d+]`. Real dies see *correlated* variation: slow corners, radial
//! gradients, per-route static offsets. All of these stay inside
//! `[d−, d+]`, so every theorem still applies — but the skew
//! *distributions* change, and this driver quantifies how much margin the
//! worst-case analysis buys:
//!
//! * iid per message (the paper's default; averaging hides variation),
//! * static per link (each route fixed at a random point of the range),
//! * layer gradient (bottom of the die fast, top slow),
//! * column wave (one slow sector around the cylinder),
//! * combined gradient + wave + jitter.
//!
//! ```text
//! cargo run --release -p hex-bench --bin variation
//! ```

use hex_analysis::skew::{collect_skews, exclusion_mask};
use hex_analysis::stats::Summary;
use hex_bench::Experiment;
use hex_clock::Scenario;
use hex_core::{DelayModel, DelayRange, SpatialVariation, D_MINUS, D_PLUS};
use hex_des::{Schedule, SimRng};
use hex_sim::{simulate, PulseView, SimConfig};
use hex_theory::theorem1_intra_bound;

fn spatial(layer_gradient: f64, column_wave: f64, jitter: f64) -> DelayModel {
    DelayModel::Spatial(SpatialVariation {
        range: DelayRange::paper(),
        layer_gradient,
        column_wave,
        jitter,
    })
}

fn main() {
    let exp = Experiment::from_env();
    let scenario = Scenario::RandomDPlus;
    let grid = exp.grid();
    let bound = theorem1_intra_bound(exp.width, DelayRange::paper());
    println!(
        "Process variation: {}x{} grid, scenario {}, {} runs; Theorem-1 bound {:.3} ns\n",
        exp.length,
        exp.width,
        scenario.label(),
        exp.runs,
        bound.ns()
    );

    let models: Vec<(&str, DelayModel)> = vec![
        ("iid per message", DelayModel::paper()),
        (
            "static per link",
            DelayModel::UniformPerLink(DelayRange::paper()),
        ),
        ("layer gradient", spatial(1.0, 0.0, 0.0)),
        ("column wave", spatial(0.0, 1.0, 0.0)),
        ("gradient+wave+jitter", spatial(0.6, 0.6, 0.4)),
    ];

    println!(
        "{:<22} | {:>8} {:>8} {:>8} | {:>8} {:>8} | {:>9}",
        "delay model", "intra avg", "q95", "max", "inter avg", "max", "bound use"
    );
    for (label, model) in models {
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for run in 0..exp.runs {
            let seed = exp.seed + run as u64;
            let mut rng = SimRng::seed_from_u64(seed ^ 0x5A71);
            let offsets = scenario.single_pulse_times(exp.width, D_MINUS, D_PLUS, &mut rng);
            let cfg = SimConfig {
                delays: model.clone(),
                ..SimConfig::fault_free()
            };
            let trace = simulate(grid.graph(), &Schedule::single_pulse(offsets), &cfg, seed);
            let view = PulseView::from_single_pulse(&grid, &trace);
            let mask = exclusion_mask(&grid, &[], 0);
            let s = collect_skews(&grid, &view, &mask);
            intra.extend(s.intra);
            inter.extend(s.inter);
        }
        let si = Summary::from_durations(&intra).unwrap();
        let se = Summary::from_durations(&inter).unwrap();
        assert!(
            si.max <= bound.ns() + 1e-9,
            "{label}: measured max {:.3} exceeds the Theorem-1 bound {:.3}",
            si.max,
            bound.ns()
        );
        println!(
            "{:<22} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} | {:>8.1}%",
            label,
            si.avg,
            si.q95,
            si.max,
            se.avg,
            se.max,
            100.0 * si.max / bound.ns()
        );
    }
    println!(
        "\nshapes: every correlated-variation model stays within the Theorem-1 bound (all \
         delays remain in [d−, d+]). Static per-link variation is statistically \
         indistinguishable from iid here — the 2-of-adjacent guard mixes four different \
         links per firing, re-averaging what the static draw froze. A pure layer gradient \
         makes delays locally near-uniform, *collapsing* the typical intra-layer skew \
         (avg ~5x smaller) while shifting the inter-layer bias with height. The column \
         wave is the harsh case: a persistent intra-layer skew ridge at the sector \
         boundaries (~2.5x the iid q95) — the closest realistic analogue of the \
         adversarial Fig.-5 construction, yet still at ~68% of the worst-case bound."
    );
}
