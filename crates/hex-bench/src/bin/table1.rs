//! Table 1 — intra- and inter-layer skews (ns) over 250 runs on a 50×20
//! grid, fault-free, for the four layer-0 scenarios.
//!
//! Paper reference values (for shape comparison; absolute values depend on
//! the RNG stream):
//!
//! ```text
//! scenario                  intra avg/q95/max        inter min/q5/avg/q95/max
//! (i)   0                   0.395  1.000  3.098      7.164 7.356 7.937  8.626 11.030
//! (ii)  random in [0,d-]    0.462  1.226  6.888      7.164 7.350 7.988  8.795 15.199
//! (iii) random in [0,d+]    0.473  1.260  7.786      7.164 7.349 7.997  8.814 16.219
//! (iv)  ramp d+             1.860  7.639  8.191      0.357 7.262 8.642 14.834 16.390
//! ```

use hex_bench::{batch_skews, table_row, RunSpec};
use hex_clock::Scenario;

fn main() {
    let base = RunSpec::from_env();
    println!(
        "Table 1: skews (ns), {} runs on a {}x{} grid, fault-free",
        base.runs, base.length, base.width
    );
    println!(
        "{:<24} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7} {:>7}",
        "scenario", "avg", "q95", "max", "min", "q5", "avg", "q95", "max"
    );
    for scenario in Scenario::ALL {
        let skews = batch_skews(&base.clone().scenario(scenario), 0);
        println!("{}", table_row(scenario.label(), &skews));
    }
}
