//! Fig. 8 — pulse wave propagation with layer-0 skews of 0 (scenario (i)).
//!
//! The paper shows a 3D plot of a typical wave on a 50×20 grid, truncated
//! to 30 layers: "the wave propagates evenly throughout the grid, nicely
//! smoothing out the initial skew differences". We print the ASCII relief,
//! the per-layer wave front, and emit the full wave as CSV/JSON
//! (`HEX_EMIT`) for external plotting.

use hex_analysis::wave::{wave_ascii, wave_front};
use hex_bench::{wave_table, Emitter, RunSpec};
use hex_clock::Scenario;

fn main() {
    let spec = RunSpec::from_env().scenario(Scenario::Zero);
    let rv = spec.run_single();
    let grid = spec.hex_grid();
    println!(
        "Fig. 8: pulse wave, scenario (i), {}x{} grid (ASCII relief, 30 layers)",
        spec.length, spec.width
    );
    print!("{}", wave_ascii(&grid, rv.view(), 30));
    println!("\nwave front (layer: min..max trigger time, ns):");
    for (layer, span) in wave_front(&grid, rv.view()) {
        if layer > 30 {
            break;
        }
        if let Some((lo, hi)) = span {
            println!(
                "  {layer:>3}: {lo:8.3} .. {hi:8.3}  (spread {:.3})",
                hi - lo
            );
        }
    }
    Emitter::from_env().emit(&wave_table("fig8_wave", &grid, rv.view()));
}
