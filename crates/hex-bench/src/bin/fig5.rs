//! Fig. 5 — the fault-free worst-case construction: a barrier of dead
//! nodes cuts the cylinder, nodes in and left of the focus column run at
//! `d-`, everything to the right crawls at `d+` with large initial layer-0
//! skews. The skew between the top-layer focus neighbors approaches the
//! Lemma-4 worst case.

use hex_analysis::wave::wave_ascii;
use hex_bench::construction_spec;
use hex_clock::Scenario;
use hex_des::Time;
use hex_theory::adversary::fault_free_worst_case;
use hex_theory::bounds::Theorem1;

fn main() {
    let delays = hex_core::DelayRange::paper();
    let (length, width, fast_col, barrier_col) = (20u32, 20u32, 8u32, 16u32);
    let c = fault_free_worst_case(length, width, fast_col, barrier_col, delays);

    let rv = construction_spec(&c, 1).run_single();
    let view = rv.view();

    println!(
        "Fig. 5: fault-free worst case ({}x{}, dead barrier col {}, fast cols 0..={})",
        length, width, barrier_col, fast_col
    );
    print!("{}", wave_ascii(&c.grid, view, length));

    let ((la, ca), (lb, cb)) = c.focus;
    let ta = view.time(la, ca).expect("fast node fired");
    let tb = view.time(lb, cb).expect("slow node fired");
    let skew = ta.abs_diff(tb);

    let offs: Vec<_> = (0..width as usize)
        .map(|i| c.schedule.source(i)[0] - Time::ZERO)
        .collect();
    let pot = Scenario::skew_potential(&offs, delays.lo);
    let thm = Theorem1 {
        width,
        length,
        delays,
        potential0: pot,
    };
    println!(
        "constructed skew between ({},{}) and ({},{}): {:.3} ns",
        la,
        ca,
        lb,
        cb,
        skew.ns()
    );
    println!(
        "layer-0 skew potential of the construction:  {:.3} ns",
        pot.ns()
    );
    println!(
        "Theorem-1 worst-case bound (same potential):  {:.3} ns (steady {:.3})",
        thm.intra_max().ns(),
        thm.steady_intra().ns()
    );
    println!(
        "random-delay runs (Table 1, scenario (i)) max out around 3 ns — the deterministic construction gets {:.1}x closer to the bound",
        skew.ns() / 3.1
    );
}
