//! Fig. 18 — stabilization times under scenario (iii): 10 pulses from
//! arbitrary initial states, `f ∈ {0,…,5}` Byzantine or fail-silent nodes,
//! threshold classes `C ∈ {0,…,3}` (σ(f,ℓ) = Lemma-5 bound for C = 0,
//! (4−C)·d+ otherwise), 250 runs each.
//!
//! Expected shape: "unless C is chosen aggressively large … HEX usually
//! stabilizes after the very first pulse"; for large C the averages go up
//! moderately and some runs fail to stabilize within 10 pulses (< 25%).

use hex_bench::{stabilization_sweep, RunSpec};
use hex_clock::Scenario;

fn main() {
    let spec = RunSpec::from_env().scenario(Scenario::RandomDPlus);
    stabilization_sweep(&spec, "Fig. 18", 10);
}
