//! Fig. 21 — the circular doubling-layer topology (Section 5, Embedding).
//!
//! Squeezing the cylindric HEX grid flat puts topologically-distant nodes
//! physically close; the alternative of Fig. 21 arranges each layer as a
//! ring and inserts **doubling layers** ("white nodes") that duplicate the
//! ring so the node count grows with the annulus circumference —
//! doubling layers become less frequent with distance from the center.
//! This driver builds that topology, pushes pulses through the unchanged
//! Algorithm-1 pipeline (via [`RunSpec::simulate_on`]), and reports
//! per-ring skews against the Theorem-1-style bound for each ring's width,
//! next to a plain cylinder of the final width — the Section-5 conjecture
//! is that the doubling variant is no worse.
//!
//! ```text
//! cargo run --release -p hex-bench --bin fig21
//! ```

use hex_analysis::stats::Summary;
use hex_bench::{RunSpec, TimingPolicy};
use hex_core::DelayRange;
use hex_des::{Duration, Time};
use hex_theory::theorem1_intra_bound;
use hex_topo::doubling::DoublingTopology;

fn main() {
    // Fig. 21's shape: doubling layers at 1, 2, 4, 8 — less frequent with
    // distance from the center. 4 sources grow to a 64-wide outer ring.
    let initial = 4u32;
    let length = 12u32;
    let doubling = [1u32, 2, 4, 8];

    // 100 runs by default (not the paper's 250: the topology is a Section-5
    // conjecture check, not a paper table), HEX_RUNS/HEX_SEED still apply.
    let spec = RunSpec::grid(length, initial)
        .runs(100)
        .timing(TimingPolicy::Generous)
        .with_env();

    let topo = DoublingTopology::new(initial, length, &doubling);
    println!(
        "Fig. 21: doubling topology, {} sources, {} layers, doubling at {:?}, {} nodes, {} runs",
        initial,
        length,
        doubling,
        topo.node_count(),
        spec.runs
    );

    // Per-ring skew statistics across runs.
    let mut per_layer: Vec<Vec<Duration>> = vec![Vec::new(); (length + 1) as usize];
    for run in 0..spec.runs {
        let trace = spec.simulate_on(topo.graph(), run);
        let fires: Vec<Option<Time>> = (0..topo.node_count())
            .map(|n| trace.unique_fire(n as u32))
            .collect();
        assert!(fires.iter().all(Option::is_some), "run {run}: starved node");
        for layer in 1..=length {
            per_layer[layer as usize].push(topo.ring_skew(layer, &fires).expect("ring skew"));
        }
    }

    println!(
        "\n{:>5} {:>6} {:>9} | {:>10} {:>10} {:>10} | {:>10}",
        "layer", "width", "doubling", "avg skew", "q95", "max", "Thm-1(W)"
    );
    for layer in 1..=length {
        let s = Summary::from_durations(&per_layer[layer as usize]).unwrap();
        let bound = theorem1_intra_bound(topo.width(layer), DelayRange::paper());
        assert!(
            s.max <= bound.ns(),
            "layer {layer}: measured max {:.3} exceeds bound {:.3}",
            s.max,
            bound.ns()
        );
        println!(
            "{:>5} {:>6} {:>9} | {:>8.3}ns {:>8.3}ns {:>8.3}ns | {:>8.3}ns",
            layer,
            topo.width(layer),
            if doubling.contains(&layer) { "yes" } else { "" },
            s.avg,
            s.q95,
            s.max,
            bound.ns()
        );
    }

    // Plain cylinder of the final width for comparison (same number of
    // layers above the last doubling), as a parallel RunSpec batch.
    let final_w = topo.width(length);
    let plain_spec = RunSpec::grid(length, final_w)
        .runs(spec.runs)
        .seed(spec.seed ^ 0xF16)
        .timing(TimingPolicy::Generous);
    let mut plain: Vec<Duration> = Vec::new();
    for rv in plain_spec.run_batch() {
        let view = rv.view();
        for layer in 1..=length {
            for col in 0..final_w as i64 {
                let (a, b) = (
                    view.time(layer, col).unwrap(),
                    view.time(layer, col + 1).unwrap(),
                );
                plain.push(a.abs_diff(b));
            }
        }
    }
    let p = Summary::from_durations(&plain).unwrap();
    let top = Summary::from_durations(&per_layer[length as usize]).unwrap();
    println!(
        "\nouter ring (W = {final_w}) avg/q95/max = {:.3}/{:.3}/{:.3} ns vs plain {final_w}-wide \
         cylinder {:.3}/{:.3}/{:.3} ns",
        top.avg, top.q95, top.max, p.avg, p.q95, p.max
    );
    println!(
        "shape: every ring obeys the width-indexed Theorem-1 bound and the outer ring's *max* \
         skew matches the plain cylinder's, supporting the Section-5 conjecture; the higher \
         average reflects that 4 sources (not {final_w}) seed the fabric."
    );
}
