//! Crash-cluster study (Section 3.2 / the companion paper's \[32\] crash
//! simulations).
//!
//! Crash faults are "more benign": a cluster of `k` adjacent fail-silent
//! nodes starves exactly an upward triangle of `k(k−1)/2` nodes (every HEX
//! guard pair contains a lower port), the wave flows around the hole, and
//! the skew perturbation is local. This driver measures, per cluster size:
//!
//! * the starved set against the exact topological shadow;
//! * skew versus hop distance from the hole (blast radius);
//! * clustered versus Condition-1-separated placement of the same `f`.
//!
//! ```text
//! cargo run --release -p hex-bench --bin crash_clusters
//! ```

use hex_analysis::crash::{crash_shadow, hop_distances, horizontal_cluster};
use hex_analysis::skew::exclusion_mask;
use hex_analysis::stats::Summary;
use hex_bench::{batch_skews, FaultRegime, RunSpec, TimingPolicy};
use hex_clock::Scenario;
use hex_core::{FaultPlan, NodeFault, NodeId};
use hex_des::Duration;

fn main() {
    let base = RunSpec::from_env().scenario(Scenario::RandomDPlus);
    let grid = base.hex_grid();
    println!(
        "Crash clusters: {}x{} grid, scenario {}, {} runs per configuration\n",
        base.length,
        base.width,
        base.scenario.label(),
        base.runs
    );

    // Fault-free reference for the blast-radius comparison.
    let ff = batch_skews(&base, 0);
    let ff_sum = Summary::from_durations(&ff.cumulated.intra).unwrap();
    println!(
        "fault-free reference: intra avg {:.3} / q95 {:.3} / max {:.3} ns\n",
        ff_sum.avg, ff_sum.q95, ff_sum.max
    );

    println!(
        "{:>2} | {:>7} {:>7} | q95 intra skew by hop distance from hole (ns)",
        "k", "shadow", "exact"
    );
    let cluster_layer = 4u32;
    // The k ∈ {2,3,4} batches are reused verbatim by the clustered-vs-
    // separated comparison below — cache them instead of re-simulating.
    let mut cached: Vec<Option<Vec<hex_bench::RunView>>> = vec![None; 6];
    // `k` is the cluster size being swept, not an index walk; `cached[k]`
    // is a keyed side-store, so enumerate() would misread the intent.
    #[allow(clippy::needless_range_loop)]
    for k in 1..=5usize {
        let dead = horizontal_cluster(&grid, cluster_layer, 7, k);
        let shadow = crash_shadow(&grid, &dead);
        // Distance classes measured from the dead ∪ starved hole.
        let mut hole = dead.clone();
        hole.extend(&shadow);
        hole.sort_unstable();
        let dist = hop_distances(&grid, &hole);

        // Clustered fail-silent faults, generous single-pulse timeouts
        // (stabilization timing is irrelevant for one clean pulse).
        let batch = cluster_spec(&base, &dead).run_batch();

        // Intra-skew samples per distance class over runs. The starved-set
        // check needs each run's view, so the batch is materialized.
        let mut by_dist: Vec<Vec<Duration>> = vec![Vec::new(); 7];
        let mut measured_shadow = None;
        for (run, rv) in batch.iter().enumerate() {
            let view = rv.view();
            let got: Vec<NodeId> = starved_of_view(&grid, view, &dead);
            assert_eq!(
                got, shadow,
                "run {run}: measured shadow deviates from the fixpoint"
            );
            measured_shadow = Some(got.len());
            for layer in 1..=base.length {
                for col in 0..base.width as i64 {
                    let a = grid.node(layer, col);
                    let b = grid.node(layer, col + 1);
                    let (Some(ta), Some(tb)) = (view.time(layer, col), view.time(layer, col + 1))
                    else {
                        continue;
                    };
                    let d = dist[a as usize].min(dist[b as usize]).min(6) as usize;
                    by_dist[d].push(ta.abs_diff(tb));
                }
            }
        }
        let cells: Vec<String> = by_dist
            .iter()
            .enumerate()
            .map(|(d, samples)| match Summary::from_durations(samples) {
                Some(s) if d > 0 => format!("d{d}: {:5.2}", s.q95),
                _ => format!("d{d}: —   "),
            })
            .collect();
        println!(
            "{:>2} | {:>7} {:>7} | {}",
            k,
            measured_shadow.unwrap_or(0),
            k * (k - 1) / 2,
            cells.join("  ")
        );
        if (2..=4).contains(&k) {
            cached[k] = Some(batch);
        }
    }

    // Clustered vs separated placement of the same f (skew over survivors,
    // excluding the hole itself).
    println!("\nclustered vs Condition-1-separated fail-silent faults (h = 0 exclusion of dead+starved):");
    println!(
        "{:>2} | {:>28} | {:>28}",
        "f", "clustered intra avg/q95/max", "separated intra avg/q95/max"
    );
    // As above: `f` is the fault count under study, `cached[f]` a keyed store.
    #[allow(clippy::needless_range_loop)]
    for f in 2..=4usize {
        // Clustered: one k = f horizontal run, the batch cached above.
        let dead = horizontal_cluster(&grid, cluster_layer, 7, f);
        let shadow = crash_shadow(&grid, &dead);
        let mut excluded = dead.clone();
        excluded.extend(&shadow);
        excluded.sort_unstable();
        let mask = exclusion_mask(&grid, &excluded, 0);
        let mut all = Vec::new();
        for rv in cached[f].as_ref().expect("k = f batch cached") {
            all.extend(hex_analysis::skew::collect_skews(&grid, rv.view(), &mask).intra);
        }
        let clustered = Summary::from_durations(&all).unwrap();

        let sep = batch_skews(&base.clone().faults(FaultRegime::FailSilent(f)), 0);
        let separated = Summary::from_durations(&sep.cumulated.intra).unwrap();
        println!(
            "{:>2} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3}",
            f,
            clustered.avg,
            clustered.q95,
            clustered.max,
            separated.avg,
            separated.q95,
            separated.max
        );
    }
    println!(
        "\nshapes: measured starved sets equal the exact k(k−1)/2 triangle in every run. The \
         per-distance q95 decays away from the hole but stays elevated in its upward wake: \
         nodes rescued by side-triggering run ~d+ late, and that lateness smooths out over \
         ~W layers exactly like an initial skew (Lemma 3) — a cone, not a ball. Worst-case \
         (max) skew never exceeds ~d+ anywhere, and clustered crashes cost *less* neighbor \
         skew than separated ones of the same f — clustering trades skew for the starved \
         triangle."
    );
}

/// The base spec with a fixed fail-silent cluster and generous timeouts.
fn cluster_spec(base: &RunSpec, dead: &[NodeId]) -> RunSpec {
    base.clone()
        .faults(FaultRegime::Plan(
            FaultPlan::none().with_nodes(dead, NodeFault::FailSilent),
        ))
        .timing(TimingPolicy::Generous)
}

/// Correct nodes that never fired in this view, excluding the dead set
/// (the view-level equivalent of `hex_analysis::crash::starved`).
fn starved_of_view(
    grid: &hex_core::HexGrid,
    view: &hex_sim::PulseView,
    dead: &[NodeId],
) -> Vec<NodeId> {
    let mut out = Vec::new();
    for layer in 0..=grid.length() {
        for col in 0..grid.width() {
            let n = grid.node(layer, col as i64);
            if dead.binary_search(&n).is_ok() {
                continue;
            }
            if view.time(layer, col as i64).is_none() {
                out.push(n);
            }
        }
    }
    out
}
