//! Fig. 10 — cumulated skew histograms from 250 runs in scenario (i).
//!
//! Expected shape: "a sharp concentration with an exponential tail" for
//! both the intra-layer and the (signed) inter-layer skews.

use hex_analysis::histogram::Histogram;
use hex_analysis::stats::Summary;
use hex_bench::{batch_skews, histogram_table, Emitter, RunSpec};
use hex_clock::Scenario;
use hex_des::Duration;

fn main() {
    let spec = RunSpec::from_env().scenario(Scenario::Zero);
    let skews = batch_skews(&spec, 0);

    println!(
        "Fig. 10: cumulated skew histograms, scenario (i), {} runs",
        spec.runs
    );

    let mut intra = Histogram::new(Duration::ZERO, Duration::from_ns(9.0), 36);
    intra.add_all(&skews.cumulated.intra);
    println!(
        "\nintra-layer skews ({} samples, overflow {}):",
        intra.total(),
        intra.overflow()
    );
    print!("{}", intra.to_ascii(48));
    let s = Summary::from_durations(&skews.cumulated.intra).unwrap();
    println!("summary: {}", s.intra_row());

    let mut inter = Histogram::new(Duration::ZERO, Duration::from_ns(18.0), 36);
    inter.add_all(&skews.cumulated.inter);
    println!(
        "\ninter-layer skews ({} samples, underflow {}, overflow {}):",
        inter.total(),
        inter.underflow(),
        inter.overflow()
    );
    print!("{}", inter.to_ascii(48));
    let s = Summary::from_durations(&skews.cumulated.inter).unwrap();
    println!("summary: {}", s.inter_row());

    let emitter = Emitter::from_env();
    emitter.emit(&histogram_table("fig10_intra", &intra));
    emitter.emit(&histogram_table("fig10_inter", &inter));
}
