//! Fig. 12 — per-layer inter-layer skews (min/avg/max ± std), scenarios
//! (iii) and (iv), truncated to 30 layers, 250 runs.
//!
//! Expected shape: "the fairly discrepant skews observed in lower layers
//! start to smooth out after layer W − 2, in accordance with Lemma 3" —
//! most visible for the ramp scenario, whose per-layer max drops sharply
//! after layer 18 (W = 20).

use hex_analysis::layers::{layer_series, layer_series_csv};
use hex_analysis::skew::exclusion_mask;
use hex_bench::{single_pulse_batch, Experiment, FaultRegime};
use hex_clock::Scenario;
use hex_sim::PulseView;

fn main() {
    let exp = Experiment::from_env();
    let grid = exp.grid();
    let mask = exclusion_mask(&grid, &[], 0);
    for scenario in [Scenario::RandomDPlus, Scenario::Ramp] {
        let views = single_pulse_batch(&exp, scenario, FaultRegime::None);
        let refs: Vec<&PulseView> = views.iter().map(|rv| &rv.view).collect();
        let rows = layer_series(&grid, &refs, &mask, 30);
        println!(
            "\nFig. 12, scenario {}: per-layer inter-layer skews (ns), {} runs",
            scenario.label(),
            exp.runs
        );
        println!(
            "{:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "layer", "min", "q5", "avg", "q95", "max", "std"
        );
        for r in &rows {
            println!(
                "{:>5} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                r.layer,
                r.summary.min,
                r.summary.q05,
                r.summary.avg,
                r.summary.q95,
                r.summary.max,
                r.summary.std
            );
        }
        if std::env::var("HEX_CSV").is_ok() {
            println!("{}", layer_series_csv(&rows));
        }
    }
}
