//! Fig. 12 — per-layer inter-layer skews (min/avg/max ± std), scenarios
//! (iii) and (iv), truncated to 30 layers, 250 runs.
//!
//! Expected shape: "the fairly discrepant skews observed in lower layers
//! start to smooth out after layer W − 2, in accordance with Lemma 3" —
//! most visible for the ramp scenario, whose per-layer max drops sharply
//! after layer 18 (W = 20).

use hex_analysis::layers::layer_series;
use hex_analysis::skew::exclusion_mask;
use hex_bench::{layer_table, Emitter, RunSpec};
use hex_clock::Scenario;
use hex_sim::PulseView;

fn main() {
    let base = RunSpec::from_env();
    let grid = base.hex_grid();
    let mask = exclusion_mask(&grid, &[], 0);
    let emitter = Emitter::from_env();
    for scenario in [Scenario::RandomDPlus, Scenario::Ramp] {
        let spec = base.clone().scenario(scenario);
        let views = spec.run_batch();
        let refs: Vec<&PulseView> = views.iter().map(|rv| rv.view()).collect();
        let rows = layer_series(&grid, &refs, &mask, 30);
        println!(
            "\nFig. 12, scenario {}: per-layer inter-layer skews (ns), {} runs",
            scenario.label(),
            spec.runs
        );
        println!(
            "{:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "layer", "min", "q5", "avg", "q95", "max", "std"
        );
        for r in &rows {
            println!(
                "{:>5} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                r.layer,
                r.summary.min,
                r.summary.q05,
                r.summary.avg,
                r.summary.q95,
                r.summary.max,
                r.summary.std
            );
        }
        emitter.emit(&layer_table(&format!("fig12_{}", scenario.slug()), &rows));
    }
}
