//! Table 2 — intra- and inter-layer skews (ns) over 250 runs on a 50×20
//! grid with **one Byzantine node** (random Condition-1 placement, random
//! per-link stuck-0/1 behaviour), for the four layer-0 scenarios.
//!
//! Paper reference values:
//!
//! ```text
//! scenario                  intra avg/q95/max        inter min/q5/avg/q95/max
//! (i)   0                   0.539  1.335 10.385      5.575 7.352 8.007  8.760 17.548
//! (ii)  random in [0,d-]    0.607  1.717 10.123      4.205 7.343 8.058  9.003 20.027
//! (iii) random in [0,d+]    0.618  1.787 10.363      3.515 7.343 8.067  9.033 20.717
//! (iv)  ramp d+             1.973  7.660 34.590    −19.695 7.260 8.690 14.866 24.305
//! ```

use hex_bench::{batch_skews, table_row, FaultRegime, RunSpec};
use hex_clock::Scenario;

fn main() {
    let base = RunSpec::from_env().faults(FaultRegime::Byzantine(1));
    println!(
        "Table 2: skews (ns), {} runs on a {}x{} grid, one Byzantine node",
        base.runs, base.length, base.width
    );
    println!(
        "{:<24} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7} {:>7}",
        "scenario", "avg", "q95", "max", "min", "q5", "avg", "q95", "max"
    );
    for scenario in Scenario::ALL {
        let skews = batch_skews(&base.clone().scenario(scenario), 0);
        println!("{}", table_row(scenario.label(), &skews));
    }
}
